package serving

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// This file is the property harness the fast path made cheap to run: across
// randomized configurations and seeds, every Step of a run — on both the
// fast and the reference decode path — must preserve the conservation laws
// the incremental accounting claims to maintain:
//
//   - generated tokens ≡ Σ per-iteration committed tokens ≡ Σ per-request
//     output tokens;
//   - the incremental ΣkvLen and the O(1) KV-demand totals ≡ a from-scratch
//     recompute over the live request sets;
//   - the energy ledger's total ≡ the sum of its per-component charges, all
//     non-negative;
//   - no request finishes before its arrival, produces a token before its
//     TTFT, or reports a negative latency;
//
// and the two decode paths must agree bit-for-bit on the whole Result.
// FuzzStepperInvariants drives the same harness from fuzzed inputs.

// invariantCase is one randomized scenario drawn from a seed.
type invariantCase struct {
	sysIdx    int // index into invariantSystems
	modelIdx  int // index into invariantModels
	tlp       int
	maxBatch  int
	requests  int
	rate      float64 // arrivals/s; 0 = ready batch
	batchFrac float64 // fraction tagged batch-class
	static    bool
	seed      int64
}

func invariantSystems() []func() *core.System {
	return []func() *core.System{
		func() *core.System { return core.NewPAPI(0) },
		core.NewA100AttAcc,
		core.NewPIMOnlyPAPI,
	}
}

func invariantModels() []model.Config {
	return []model.Config{model.OPT30B(), model.LLaMA65B()}
}

// caseFromSeed derives a bounded scenario from arbitrary fuzz inputs.
func caseFromSeed(seed int64, sysPick, modelPick, tlpPick, batchPick, classPick byte, static bool) invariantCase {
	tlps := []int{1, 1, 2, 4} // weight TLP 1: it exercises macro-stepping
	return invariantCase{
		sysIdx:    int(sysPick) % len(invariantSystems()),
		modelIdx:  int(modelPick) % len(invariantModels()),
		tlp:       tlps[int(tlpPick)%len(tlps)],
		maxBatch:  3 + int(batchPick)%10,
		requests:  8 + int(seed%17),
		rate:      10 + float64(seed%31),
		batchFrac: float64(classPick%5) * 0.25, // 0, .25, .5, .75, 1
		static:    static,
		seed:      seed,
	}
}

// buildStream draws the case's request stream.
func (c invariantCase) buildStream() []workload.Request {
	ds := workload.GeneralQA()
	var reqs []workload.Request
	if c.static || c.rate == 0 {
		reqs = ds.Generate(c.requests, c.seed)
	} else {
		reqs = ds.Poisson(c.requests, c.rate, c.seed)
	}
	return workload.AssignClasses(reqs, c.batchFrac, c.seed+1)
}

// checkStepInvariants recomputes every incremental total from scratch and
// compares. It runs after every Step, so a drift is caught at the step that
// introduced it.
func checkStepInvariants(t *testing.T, s *Stepper) {
	t.Helper()
	kvSum := 0
	var kvActive units.Bytes
	actInt, actBat := 0, 0
	for _, r := range s.active {
		kvSum += r.InputLen + r.generated
		kvActive += s.eng.Cfg.KVBytes(r.SeqLen())
		if r.Class == workload.ClassBatch {
			actBat++
		} else {
			actInt++
		}
	}
	kvAll := kvActive
	pendInt, pendBat := 0, 0
	for _, r := range s.pending {
		kvAll += s.eng.Cfg.KVBytes(r.SeqLen())
		if r.Class == workload.ClassBatch {
			pendBat++
		} else {
			pendInt++
		}
	}
	if s.kvSum != kvSum {
		t.Fatalf("incremental ΣkvLen %d != recomputed %d", s.kvSum, kvSum)
	}
	if s.kvDemandActive != kvActive {
		t.Fatalf("incremental active KV demand %v != recomputed %v", s.kvDemandActive, kvActive)
	}
	if s.kvDemandAll != kvAll {
		t.Fatalf("incremental outstanding KV demand %v != recomputed %v", s.kvDemandAll, kvAll)
	}
	if s.actInteractive != actInt || s.actBatch != actBat ||
		s.pendInteractive != pendInt || s.pendBatch != pendBat {
		t.Fatalf("class counters (act %d/%d pend %d/%d) != recomputed (act %d/%d pend %d/%d)",
			s.actInteractive, s.actBatch, s.pendInteractive, s.pendBatch,
			actInt, actBat, pendInt, pendBat)
	}
}

// checkResultInvariants asserts the end-of-run conservation laws.
func checkResultInvariants(t *testing.T, reqs []workload.Request, res Result) {
	t.Helper()

	// Token conservation: the run total, the per-iteration trace, and the
	// per-request metrics must all agree (the iteration trace is complete
	// for these sizes — far below the trace cap).
	iterTokens := 0
	for _, it := range res.IterStats {
		iterTokens += it.Tokens
	}
	if res.Iterations <= len(res.IterStats) && iterTokens != res.Tokens {
		t.Fatalf("Σ iteration tokens %d != run total %d", iterTokens, res.Tokens)
	}
	wantTokens := 0
	byID := map[int]workload.Request{}
	for _, r := range reqs {
		wantTokens += r.OutputLen
		byID[r.ID] = r
	}
	if res.Tokens != wantTokens {
		t.Fatalf("run generated %d tokens, stream demands %d", res.Tokens, wantTokens)
	}
	gotTokens := 0
	for _, rm := range res.Requests {
		gotTokens += rm.OutputTokens
		req := byID[rm.ID]
		if rm.OutputTokens != req.OutputLen {
			t.Fatalf("request %d produced %d of %d tokens", rm.ID, rm.OutputTokens, req.OutputLen)
		}
		// Latency sanity: epochs are arrival-relative, so nothing may be
		// negative, and a request cannot finish before its first token.
		if rm.TTFT < 0 || rm.TPOT < 0 || rm.Completion < 0 {
			t.Fatalf("request %d has negative latency: %+v", rm.ID, rm)
		}
		if rm.Completion < rm.TTFT {
			t.Fatalf("request %d finished at %v before its first token at %v", rm.ID, rm.Completion, rm.TTFT)
		}
		if rm.Class != req.Class {
			t.Fatalf("request %d class %v != stream class %v", rm.ID, rm.Class, req.Class)
		}
	}
	if gotTokens != res.Tokens {
		t.Fatalf("Σ per-request tokens %d != run total %d", gotTokens, res.Tokens)
	}

	// Energy conservation: the ledger total is exactly the sum of its
	// component charges, every component non-negative.
	var sum units.Joules
	for _, c := range res.Energy.Components() {
		j := res.Energy.Get(c)
		if j < 0 {
			t.Fatalf("component %s charged negative energy %v", c, j)
		}
		sum += j
	}
	if total := res.Energy.Total(); total != sum {
		t.Fatalf("ledger total %v != Σ components %v", total, sum)
	}
	if res.Preemptions < 0 {
		t.Fatalf("negative preemption count %d", res.Preemptions)
	}
}

// runCase drives one configuration to completion on the given decode path,
// checking the step-level invariants throughout.
func runCase(t *testing.T, c invariantCase, mode FastPathMode) Result {
	t.Helper()
	opt := DefaultOptions(c.tlp)
	opt.Seed = c.seed
	opt.FastPath = mode
	eng, err := New(invariantSystems()[c.sysIdx](), invariantModels()[c.modelIdx], opt)
	if err != nil {
		t.Fatalf("case %+v: %v", c, err)
	}
	reqs := c.buildStream()
	var st *Stepper
	if c.static {
		st, err = eng.NewBatchStepper(reqs)
	} else {
		st, err = eng.NewStreamStepper(reqs, c.maxBatch)
	}
	if err != nil {
		t.Fatalf("case %+v: %v", c, err)
	}
	for {
		info, err := st.Step()
		if err != nil {
			t.Fatalf("case %+v: %v", c, err)
		}
		checkStepInvariants(t, st)
		if info.Kind == StepDrained {
			break
		}
	}
	res := st.Finalize()
	checkResultInvariants(t, reqs, res)
	return res
}

// exerciseCase runs a configuration on both decode paths and pins their
// bit-identical agreement.
func exerciseCase(t *testing.T, c invariantCase) {
	fast := runCase(t, c, FastPathOn)
	ref := runCase(t, c, FastPathOff)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("case %+v: fast and reference paths diverged:\n fast: %+v\n  ref: %+v", c, fast, ref)
	}
}

// TestStepperInvariantsRandomized sweeps a deterministic sample of the
// configuration space.
func TestStepperInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 24; i++ {
		c := caseFromSeed(int64(rng.Intn(1<<30)),
			byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)),
			byte(rng.Intn(256)), byte(rng.Intn(256)), rng.Intn(4) == 0)
		exerciseCase(t, c)
	}
}

// TestStepperInvariantsUnderPreemption pins the preemption machinery: a KV
// pool saturated with batch-class long-context work must evict for
// interactive arrivals, every evicted request must still complete, and the
// conservation laws must survive the evict-and-requeue churn — on both
// decode paths.
func TestStepperInvariantsUnderPreemption(t *testing.T) {
	// GPT-3 175B holds ~53 grown 4096-token requests in its 1.03 TB pool;
	// 60 batch-class requests of that size oversubscribe it, so the later
	// interactive arrivals can only be admitted by eviction.
	build := func() []workload.Request {
		var reqs []workload.Request
		for i := 0; i < 60; i++ {
			reqs = append(reqs, workload.Request{ID: i, InputLen: 2048, OutputLen: 2048,
				Class: workload.ClassBatch})
		}
		for i := 0; i < 12; i++ {
			reqs = append(reqs, workload.Request{ID: 60 + i, InputLen: 2048, OutputLen: 64,
				Arrival: units.Seconds(0.5 + 0.5*float64(i)), Class: workload.ClassInteractive})
		}
		return reqs
	}
	run := func(mode FastPathMode) Result {
		opt := DefaultOptions(1)
		opt.FastPath = mode
		eng, err := New(core.NewPAPI(0), model.GPT3_175B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		reqs := build()
		st, err := eng.NewStreamStepper(reqs, 96)
		if err != nil {
			t.Fatal(err)
		}
		for {
			info, err := st.Step()
			if err != nil {
				t.Fatal(err)
			}
			checkStepInvariants(t, st)
			if info.Kind == StepDrained {
				break
			}
		}
		res := st.Finalize()
		checkResultInvariants(t, reqs, res)
		return res
	}
	fast := run(FastPathOn)
	if fast.Preemptions == 0 {
		t.Fatal("KV-saturated tiered stream triggered no preemptions")
	}
	preempted := 0
	for _, rm := range fast.Requests {
		if rm.Preemptions > 0 {
			preempted++
			if rm.Class != workload.ClassBatch {
				t.Fatalf("interactive request %d was preempted", rm.ID)
			}
		}
	}
	if preempted == 0 {
		t.Fatal("preemptions recorded on the run but on no request")
	}
	ref := run(FastPathOff)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("preemptive run diverged between decode paths:\n fast: %+v\n  ref: %+v", fast, ref)
	}
}

// FuzzStepperInvariants lets the fuzzer search the configuration space for
// a seed that breaks a conservation law or splits the decode paths. The
// corpus seeds cover each system, both modes, speculation, and every
// class-mix weight.
func FuzzStepperInvariants(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0), byte(0), byte(0), byte(0), false)
	f.Add(int64(7), byte(1), byte(1), byte(2), byte(4), byte(2), false)
	f.Add(int64(23), byte(2), byte(0), byte(3), byte(7), byte(4), true)
	f.Add(int64(101), byte(0), byte(1), byte(1), byte(9), byte(1), false)
	f.Add(int64(4099), byte(1), byte(0), byte(0), byte(5), byte(3), true)
	f.Fuzz(func(t *testing.T, seed int64, sysPick, modelPick, tlpPick, batchPick, classPick byte, static bool) {
		if seed < 0 {
			seed = -seed
		}
		exerciseCase(t, caseFromSeed(seed, sysPick, modelPick, tlpPick, batchPick, classPick, static))
	})
}
