package serving

import (
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func TestBatchRequestMetrics(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	reqs := fixedBatch(4, 64, 32)
	res, err := e.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 4 {
		t.Fatalf("metrics for %d requests, want 4", len(res.Requests))
	}
	for _, rm := range res.Requests {
		if rm.TTFT <= res.PrefillTime {
			t.Errorf("request %d: TTFT %v must exceed prefill %v", rm.ID, rm.TTFT, res.PrefillTime)
		}
		if rm.Completion < rm.TTFT {
			t.Errorf("request %d: completion %v before first token %v", rm.ID, rm.Completion, rm.TTFT)
		}
		if rm.OutputTokens != 32 {
			t.Errorf("request %d: %d tokens, want 32", rm.ID, rm.OutputTokens)
		}
		if rm.TPOT <= 0 {
			t.Errorf("request %d: non-positive TPOT %v", rm.ID, rm.TPOT)
		}
		if rm.Completion > res.TotalTime() {
			t.Errorf("request %d: completion %v beyond makespan %v", rm.ID, rm.Completion, res.TotalTime())
		}
	}
	// Uniform outputs at TLP=1: every request finishes at the same instant.
	for _, rm := range res.Requests[1:] {
		if rm.Completion != res.Requests[0].Completion {
			t.Errorf("uniform batch should complete together: %v vs %v",
				rm.Completion, res.Requests[0].Completion)
		}
	}
}

func TestBatchTPOTMatchesIterationTime(t *testing.T) {
	// With TLP=1 each live request gets one token per iteration, so TPOT ≈
	// average iteration time while the batch is full.
	e := mustEngine(t, core.NewA100AttAcc(), model.LLaMA65B(), DefaultOptions(1))
	res, err := e.RunBatch(fixedBatch(4, 64, 32))
	if err != nil {
		t.Fatal(err)
	}
	avgIter := float64(res.DecodeTime) / float64(res.Iterations)
	got := float64(res.Requests[0].TPOT)
	if got < avgIter*0.9 || got > avgIter*1.1 {
		t.Fatalf("TPOT %v vs mean iteration %v", res.Requests[0].TPOT, units.Seconds(avgIter))
	}
}

func TestContinuousMetricsRelativeToArrival(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	reqs := []workload.Request{
		{ID: 0, InputLen: 32, OutputLen: 8, Arrival: 0},
		{ID: 1, InputLen: 32, OutputLen: 8, Arrival: units.Seconds(5)},
	}
	res, err := e.RunContinuous(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 2 {
		t.Fatalf("metrics for %d requests", len(res.Requests))
	}
	// The late request's TTFT is measured from its own arrival, so it must
	// be far below the 5 s gap.
	for _, rm := range res.Requests {
		if rm.TTFT > units.Seconds(1) {
			t.Errorf("request %d: TTFT %v should be request-relative", rm.ID, rm.TTFT)
		}
	}
}

func TestSLOAttainment(t *testing.T) {
	ms := []RequestMetrics{
		{ID: 0, OutputTokens: 8, TPOT: units.Milliseconds(10)},
		{ID: 1, OutputTokens: 8, TPOT: units.Milliseconds(20)},
		{ID: 2, OutputTokens: 8, TPOT: units.Milliseconds(40)},
	}
	slo := workload.SLO{TokenLatency: units.Milliseconds(25)}
	if got := SLOAttainment(ms, slo); got != 2.0/3 {
		t.Fatalf("attainment = %v, want 2/3", got)
	}
	if got := SLOAttainment(nil, slo); got != 0 {
		t.Fatalf("empty attainment = %v", got)
	}
	if got := SLOAttainment(ms, workload.SLO{}); got != 1 {
		t.Fatalf("unbounded SLO attainment = %v, want 1", got)
	}
}

func TestSLOAttainmentSingleToken(t *testing.T) {
	// Single-token requests are scored by TTFT-inclusive completion, not by
	// their (zero, undefined) TPOT — so a slow prefill still counts against
	// the SLO, and a fast one is not penalised by a fictional TPOT.
	slo := workload.SLO{TokenLatency: units.Milliseconds(25)}
	fast := RequestMetrics{ID: 0, OutputTokens: 1, Completion: units.Milliseconds(10)}
	slow := RequestMetrics{ID: 1, OutputTokens: 1, Completion: units.Milliseconds(50)}
	if got := SLOAttainment([]RequestMetrics{fast, slow}, slo); got != 0.5 {
		t.Fatalf("single-token attainment = %v, want 0.5", got)
	}
}

func TestSingleTokenTPOT(t *testing.T) {
	// A one-token request has no inter-token gap; its TPOT is 0 by
	// definition and its SLO experience is judged by completion time.
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	res, err := e.RunBatch([]workload.Request{{ID: 0, InputLen: 16, OutputLen: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rm := res.Requests[0]
	if rm.OutputTokens != 1 || rm.TPOT != 0 {
		t.Fatalf("single-token metrics = %+v, want TPOT 0", rm)
	}
	if rm.Completion != rm.TTFT {
		t.Fatalf("single-token completion %v != TTFT %v", rm.Completion, rm.TTFT)
	}
}
