package serving

import (
	"fmt"

	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Perturbation is the fault injector's latency lens on one engine: Slow
// multiplies every kernel latency (a straggling node), Attn multiplies the
// attention and communication terms only (a degraded PIM pool or GPU↔PIM
// link brownout, priced through the existing cost-model breakdown). Factors
// at or below 1 are inert; the zero value means "no perturbation".
type Perturbation struct {
	Slow float64
	Attn float64
}

// active reports whether the perturbation changes anything.
func (p Perturbation) active() bool { return p.Slow > 1 || p.Attn > 1 }

// SetPerturbation installs (or, with the zero value, clears) the engine's
// latency perturbation. The cluster fault injector calls this at window
// edges; while a perturbation is active the stepper prices every iteration
// individually (macro-stepping is suspended) so the stretch lands on the
// exact iterations inside the window.
func (s *Stepper) SetPerturbation(p Perturbation) {
	s.perturb = p
	s.perturbed = p.active()
}

// stretch prices the active perturbation onto one just-priced iteration:
// the attention and communication deltas of this iteration scale by Attn,
// then the whole stretched iteration scales by Slow, with the straggler
// surcharge booked under Other (it is node slowness, not a kernel). pre is
// the Result breakdown snapshotted before the iteration ran. First-order
// model: the surcharge is time only — no extra device energy is charged for
// it, though host energy grows with the longer makespan.
func (s *Stepper) stretch(it *IterationStat, pre TimeBreakdown) {
	var extra units.Seconds
	if f := s.perturb.Attn; f > 1 {
		ea := (s.res.Breakdown.Attention - pre.Attention).Scale(f - 1)
		ec := (s.res.Breakdown.Communication - pre.Communication).Scale(f - 1)
		s.res.Breakdown.Attention += ea
		s.res.Breakdown.Communication += ec
		extra += ea + ec
	}
	if f := s.perturb.Slow; f > 1 {
		es := (it.Time + extra).Scale(f - 1)
		s.res.Breakdown.Other += es
		extra += es
	}
	it.Time += extra
	s.res.DecodeTime += extra
}

// Casualty is one request lost from a stepper by a crash (Fail) or a
// cancellation (Cancel): what the fleet's failover path needs to rebuild the
// retry. Generated counts the output tokens the request had committed —
// already in Result.Tokens and lost with the replica, so a retry must
// re-prefill them and the fleet's goodput must discount them.
type Casualty struct {
	Request   workload.Request
	Generated int
	// Admitted reports whether the request was in the active batch (true) or
	// still queued (false) when it was lost.
	Admitted bool
}

// Fail crashes the stepper: every outstanding request — active batch and
// pending queue — is surrendered (KV leases dropped, metrics entries
// withdrawn) and returned as casualties in admission-then-queue order. A
// failed stepper reports StepDrained forever and refuses further pushes; its
// Result keeps the work it already did (tokens, energy, time), which is how
// the fleet accounts a dead replica's sunk cost. Fail on a static stepper or
// a second Fail returns nil.
func (s *Stepper) Fail() []Casualty {
	if s.static || s.failed {
		return nil
	}
	s.failed = true
	var out []Casualty
	for _, r := range s.active {
		s.kvSum -= r.contextLen()
		s.kvDemandActive -= r.kvBytes
		s.kvDemandAll -= r.kvBytes
		s.countClass(r.Class, &s.actInteractive, &s.actBatch, -1)
		out = append(out, Casualty{Request: r.Request, Generated: r.generated, Admitted: true})
		s.surrender(r)
	}
	for _, r := range s.pending {
		s.kvDemandAll -= r.kvBytes
		s.countClass(r.Class, &s.pendInteractive, &s.pendBatch, -1)
		out = append(out, Casualty{Request: r.Request, Generated: r.generated, Admitted: false})
		s.surrender(r)
	}
	s.active = nil
	s.pending = nil
	s.intHint = 0
	return out
}

// Cancel withdraws one outstanding request by ID — the per-request timeout
// path. A pending request is spliced from the queue; an active one is
// evicted from the batch (the scheduler observes the eviction) and its KV
// lease surrendered. The second return is false when the ID is not
// outstanding here (already finished, or never routed here), which a stale
// timeout treats as "nothing to do".
func (s *Stepper) Cancel(id int) (Casualty, bool, error) {
	if s.static {
		return Casualty{}, false, fmt.Errorf("serving: cannot cancel in a static batch stepper")
	}
	for i, r := range s.pending {
		if r.ID != id {
			continue
		}
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		if i < s.intHint {
			s.intHint--
		}
		s.countClass(r.Class, &s.pendInteractive, &s.pendBatch, -1)
		s.kvDemandAll -= r.kvBytes
		c := Casualty{Request: r.Request, Generated: r.generated}
		s.surrender(r)
		return c, true, nil
	}
	for i, r := range s.active {
		if r.ID != id {
			continue
		}
		s.active = append(s.active[:i], s.active[i+1:]...)
		s.countClass(r.Class, &s.actInteractive, &s.actBatch, -1)
		s.kvSum -= r.contextLen()
		s.kvDemandActive -= r.kvBytes
		s.kvDemandAll -= r.kvBytes
		c := Casualty{Request: r.Request, Generated: r.generated, Admitted: true}
		s.surrender(r)
		if err := s.scheduler.Evict(1); err != nil {
			return Casualty{}, false, err
		}
		return c, true, nil
	}
	return Casualty{}, false, nil
}

// surrender drops one lost request's engine-side state: its KV lease (the
// blocks are gone with the replica, not parked for revival) and its metrics
// record, so a half-served casualty cannot masquerade as a completion in
// Finalize. The retry that replaces it starts a fresh record wherever it
// lands.
func (s *Stepper) surrender(r *request) {
	if s.kvStore != nil {
		s.kvStore.Surrender(r.lease)
	}
	delete(s.tracker.byID, r.ID)
	r.rm = nil
}
