package serving

import (
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// RequestMetrics records one request's latency experience — the quantities
// online serving SLOs are written against (§3.2(a)).
type RequestMetrics struct {
	ID int
	// TTFT is time to first token: from run start (static batching) or from
	// the request's arrival (continuous batching) to the end of the
	// iteration that committed its first output token. Prefill is included.
	TTFT units.Seconds
	// TPOT is the mean time per output token after the first — the
	// steady-state decode cadence. A single-token request has no
	// inter-token gap, so its TPOT is 0 by definition; SLOAttainment scores
	// such requests by their TTFT-inclusive completion time instead.
	TPOT units.Seconds
	// Completion is when the request finished, on the same clock as TTFT.
	Completion units.Seconds
	// OutputTokens is the number of tokens the request produced.
	OutputTokens int
	// Class is the request's priority class (interactive or batch).
	Class workload.Class
	// Preemptions counts how many times the request was evicted from the
	// active batch and requeued (batch-class requests under KV pressure).
	Preemptions int
}

// SLOAttainment returns the fraction of requests meeting the per-token SLO.
// Requests with more than one output token are scored by TPOT. Single-token
// requests have no inter-token gap (their TPOT is 0 by definition), so they
// are scored by their TTFT-inclusive completion time instead: the lone token
// must arrive within the SLO bound measured from the request's epoch.
// Scoring them by TPOT would grade them against an undefined quantity;
// before this rule they inherited TPOT = TTFT, silently polluting
// attainment with prefill latency under a decode-cadence SLO.
func SLOAttainment(reqs []RequestMetrics, slo workload.SLO) float64 {
	if len(reqs) == 0 {
		return 0
	}
	return float64(SLOMetCount(reqs, slo)) / float64(len(reqs))
}

// SLOMetCount counts the requests meeting the per-token SLO (same
// single-token rule as SLOAttainment). Exposing the count rather than the
// ratio lets the fleet aggregate choose an honest denominator: terminally
// failed requests have no metrics record but must still count as misses.
func SLOMetCount(reqs []RequestMetrics, slo workload.SLO) int {
	met := 0
	for _, r := range reqs {
		lat := r.TPOT
		if r.OutputTokens <= 1 {
			lat = r.Completion
		}
		if slo.Met(lat) {
			met++
		}
	}
	return met
}

// SLOMetCountClass counts one priority class's requests meeting the SLO,
// returning the met count and how many requests of the class were present.
func SLOMetCountClass(reqs []RequestMetrics, slo workload.SLO, class workload.Class) (met, n int) {
	for _, r := range reqs {
		if r.Class != class {
			continue
		}
		n++
		lat := r.TPOT
		if r.OutputTokens <= 1 {
			lat = r.Completion
		}
		if slo.Met(lat) {
			met++
		}
	}
	return met, n
}

// SLOAttainmentClass scores only the requests of one priority class against
// the per-token SLO (same single-token rule as SLOAttainment). It returns 1
// when the class is absent from the set: an empty tier violates nothing.
func SLOAttainmentClass(reqs []RequestMetrics, slo workload.SLO, class workload.Class) float64 {
	met, n := SLOMetCountClass(reqs, slo, class)
	if n == 0 {
		return 1
	}
	return float64(met) / float64(n)
}

// metricsTracker accumulates per-request timings during a run.
type metricsTracker struct {
	byID map[int]*RequestMetrics
}

func newMetricsTracker() *metricsTracker {
	return &metricsTracker{byID: make(map[int]*RequestMetrics)}
}

// entry resolves (and caches on the request) the request's metrics record,
// creating it with the given TTFT on first sight of the ID. Requests sharing
// an ID share one record, as they always have.
func (m *metricsTracker) entry(r *request, ttft units.Seconds) *RequestMetrics {
	rm, ok := m.byID[r.ID]
	if !ok {
		rm = &RequestMetrics{ID: r.ID, TTFT: ttft, Class: r.Class}
		m.byID[r.ID] = rm
	}
	r.rm = rm
	return rm
}

// observe records one iteration's outcome for a request: committed tokens at
// the iteration ending at clock, measured against the request's start epoch.
func (m *metricsTracker) observe(r *request, committed int, clock, epoch units.Seconds) {
	if committed <= 0 {
		return
	}
	rm := r.rm
	if rm == nil {
		rm = m.entry(r, clock-epoch)
	}
	rm.OutputTokens += committed
	rm.Completion = clock - epoch
}

// observeRun records a macro-stepped window for a request: run committed
// tokens, one per iteration, the first landing at firstClock and the last at
// lastClock. It is equivalent to run successive observe calls — the interior
// Completion writes are overwritten, so only the first iteration (which
// fixes TTFT for a fresh request) and the last (which fixes Completion)
// are observable.
func (m *metricsTracker) observeRun(r *request, run int, firstClock, lastClock, epoch units.Seconds) {
	if run <= 0 {
		return
	}
	rm := r.rm
	if rm == nil {
		rm = m.entry(r, firstClock-epoch)
	}
	rm.OutputTokens += run
	rm.Completion = lastClock - epoch
}

// finalize computes TPOTs and returns the metrics in request-ID order
// matching the input order given. An ID appearing twice in order (a
// timeout-retry re-landing on the same replica re-enters the input list)
// yields one record; surrendered requests (crash, cancel) have no record and
// yield none.
func (m *metricsTracker) finalize(order []workload.Request) []RequestMetrics {
	out := make([]RequestMetrics, 0, len(order))
	seen := make(map[int]bool, len(order))
	for _, req := range order {
		if seen[req.ID] {
			continue
		}
		seen[req.ID] = true
		rm, ok := m.byID[req.ID]
		if !ok {
			continue
		}
		if rm.OutputTokens > 1 {
			rm.TPOT = (rm.Completion - rm.TTFT) / units.Seconds(rm.OutputTokens-1)
		}
		// Single-token requests keep TPOT = 0: there is no inter-token gap
		// to average (see RequestMetrics.TPOT and SLOAttainment).
		out = append(out, *rm)
	}
	return out
}
