package serving

import (
	"fmt"

	"github.com/papi-sim/papi/internal/workload"
)

// RunContinuous executes mixed continuous batching (§2.2.1, [16,17]): new
// requests join the running batch at iteration boundaries — token-level
// scheduling — without waiting for the current batch to drain. Admission is
// bounded by maxBatch and by the attention pool's KV capacity; runtime RLP
// therefore both grows (admissions) and shrinks (completions), the §3.2
// dynamics that motivate PAPI's runtime scheduler. It is a convenience
// wrapper over NewStreamStepper that drives the stepper to completion.
func (e *Engine) RunContinuous(reqs []workload.Request, maxBatch int) (Result, error) {
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("serving: empty request stream")
	}
	st, err := e.NewStreamStepper(reqs, maxBatch)
	if err != nil {
		return Result{}, err
	}
	return st.run()
}

// Admission's KV-capacity check — whether a candidate's worst-case KV cache
// fits alongside the admitted requests — lives in Stepper.admit, against the
// incrementally-maintained active-demand total (O(1) instead of a walk over
// the batch per candidate).
