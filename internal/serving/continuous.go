package serving

import (
	"fmt"

	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// RunContinuous executes mixed continuous batching (§2.2.1, [16,17]): new
// requests join the running batch at iteration boundaries — token-level
// scheduling — without waiting for the current batch to drain. Admission is
// bounded by maxBatch and by the attention pool's KV capacity; runtime RLP
// therefore both grows (admissions) and shrinks (completions), the §3.2
// dynamics that motivate PAPI's runtime scheduler. It is a convenience
// wrapper over NewStreamStepper that drives the stepper to completion.
func (e *Engine) RunContinuous(reqs []workload.Request, maxBatch int) (Result, error) {
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("serving: empty request stream")
	}
	st, err := e.NewStreamStepper(reqs, maxBatch)
	if err != nil {
		return Result{}, err
	}
	return st.run()
}

// kvFits reports whether cand's worst-case KV cache fits alongside the
// currently-admitted requests.
func (e *Engine) kvFits(active []*request, cand *request) bool {
	var need units.Bytes
	for _, r := range active {
		if !r.done {
			need += e.Cfg.KVBytes(r.SeqLen())
		}
	}
	need += e.Cfg.KVBytes(cand.SeqLen())
	return need <= e.Sys.KVCapacity()
}
