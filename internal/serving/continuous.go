package serving

import (
	"fmt"
	"sort"

	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// RunContinuous executes mixed continuous batching (§2.2.1, [16,17]): new
// requests join the running batch at iteration boundaries — token-level
// scheduling — without waiting for the current batch to drain. Admission is
// bounded by maxBatch and by the attention pool's KV capacity; runtime RLP
// therefore both grows (admissions) and shrinks (completions), the §3.2
// dynamics that motivate PAPI's runtime scheduler.
func (e *Engine) RunContinuous(reqs []workload.Request, maxBatch int) (Result, error) {
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("serving: empty request stream")
	}
	if maxBatch <= 0 {
		return Result{}, fmt.Errorf("serving: max batch %d must be positive", maxBatch)
	}
	pending := make([]*request, len(reqs))
	for i, r := range reqs {
		if r.InputLen <= 0 || r.OutputLen <= 0 {
			return Result{}, fmt.Errorf("serving: request %d has non-positive lengths", r.ID)
		}
		pending[i] = &request{Request: r}
	}
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].Arrival < pending[j].Arrival
	})

	res := Result{System: e.Sys.Name, Model: e.Cfg.Name}
	var activeSet []*request
	var scheduler *sched.Scheduler
	var clock units.Seconds
	tracker := newMetricsTracker()
	done := 0

	admit := func() error {
		var newcomers []int
		for len(pending) > 0 && len(live(activeSet))+len(newcomers) < maxBatch {
			cand := pending[0]
			if cand.Arrival > clock {
				break
			}
			if !e.kvFits(activeSet, cand) {
				break
			}
			activeSet = append(activeSet, cand)
			newcomers = append(newcomers, cand.InputLen)
			pending = pending[1:]
		}
		if len(newcomers) == 0 {
			return nil
		}
		// Newly admitted requests are prefilled as they join (piggybacked
		// onto the token timeline, charged explicitly here).
		pt := e.runPrefill(newcomers, &res)
		res.PrefillTime += pt
		clock += pt
		if scheduler == nil {
			var err error
			scheduler, err = sched.NewScheduler(e.Sys.Policy, len(newcomers), e.Opt.TLP)
			return err
		}
		return scheduler.AdmitRequests(len(newcomers))
	}

	for done < len(reqs) {
		if err := admit(); err != nil {
			return Result{}, err
		}
		liveReqs := live(activeSet)
		if len(liveReqs) == 0 {
			// Nothing running: jump to the next arrival.
			if len(pending) == 0 {
				break
			}
			gap := pending[0].Arrival - clock
			if gap <= 0 {
				// The head request has arrived but could not be admitted with
				// an empty batch: its KV cache alone exceeds the pool.
				return Result{}, fmt.Errorf("serving: request %d KV footprint exceeds attention pool capacity",
					pending[0].ID)
			}
			res.IdleTime += gap
			clock = pending[0].Arrival
			continue
		}

		ev := scheduler.Decide()
		before := res.DecodeTime
		it := e.runIteration(liveReqs, ev, &res)
		clock += res.DecodeTime - before
		res.Iterations++
		if len(res.RLPTrace) < traceCap {
			res.RLPTrace = append(res.RLPTrace, len(liveReqs))
		}
		if len(res.IterStats) < traceCap {
			res.IterStats = append(res.IterStats, it)
		}

		eos := 0
		for _, r := range liveReqs {
			committed := e.commitTokens(r)
			res.Tokens += committed
			tracker.observe(r, committed, clock, r.Arrival)
			if r.done {
				eos++
				done++
			}
		}
		if err := scheduler.ObserveEOS(eos); err != nil {
			return Result{}, err
		}
		// Drop finished requests from the active set to release KV capacity.
		activeSet = live(activeSet)
	}
	res.Requests = tracker.finalize(reqs)

	if scheduler != nil {
		res.Reschedules = scheduler.Reschedules()
	}
	res.Energy.Add(energy.HostCPU, e.Sys.HostPower.Energy(res.TotalTime()))
	return res, nil
}

// kvFits reports whether cand's worst-case KV cache fits alongside the
// currently-admitted requests.
func (e *Engine) kvFits(active []*request, cand *request) bool {
	var need units.Bytes
	for _, r := range active {
		if !r.done {
			need += e.Cfg.KVBytes(r.SeqLen())
		}
	}
	need += e.Cfg.KVBytes(cand.SeqLen())
	return need <= e.Sys.KVCapacity()
}
