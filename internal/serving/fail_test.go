package serving

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/workload"
)

func driveToDrain(t *testing.T, s *Stepper) Result {
	t.Helper()
	for {
		info, err := s.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if info.Kind == StepDrained {
			return s.Finalize()
		}
	}
}

// An inert perturbation (factors at or below 1, or the zero value) must be
// byte-for-byte invisible: the macro-stepping gate stays open and no stretch
// is priced.
func TestPerturbationInertIsNoOp(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(12, 30, 5)
	run := func(p Perturbation, set bool) Result {
		e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
		st, err := e.NewStreamStepper(reqs, 8)
		if err != nil {
			t.Fatal(err)
		}
		if set {
			st.SetPerturbation(p)
		}
		return driveToDrain(t, st)
	}
	base := run(Perturbation{}, false)
	for _, p := range []Perturbation{{}, {Slow: 1, Attn: 1}, {Slow: 0.5, Attn: 0}} {
		if got := run(p, true); !reflect.DeepEqual(base, got) {
			t.Fatalf("inert perturbation %+v changed the Result", p)
		}
	}
}

// An active perturbation must price identically on both decode paths — the
// stretch is computed from per-iteration deltas that are themselves
// bit-identical across paths — and must actually slow the run down.
func TestPerturbationFastMatchesReference(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(12, 30, 5)
	run := func(mode FastPathMode, p Perturbation) Result {
		opt := DefaultOptions(1)
		opt.FastPath = mode
		e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), opt)
		st, err := e.NewStreamStepper(reqs, 8)
		if err != nil {
			t.Fatal(err)
		}
		st.SetPerturbation(p)
		return driveToDrain(t, st)
	}
	p := Perturbation{Slow: 2, Attn: 1.5}
	fast := run(FastPathOn, p)
	ref := run(FastPathOff, p)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("perturbed fast path diverged from reference:\nfast %+v\nref  %+v", fast, ref)
	}
	base := run(FastPathOn, Perturbation{})
	if fast.DecodeTime <= base.DecodeTime {
		t.Fatalf("perturbed decode %v not slower than baseline %v", fast.DecodeTime, base.DecodeTime)
	}
	if fast.PrefillTime <= base.PrefillTime {
		t.Fatalf("straggler prefill %v not slower than baseline %v", fast.PrefillTime, base.PrefillTime)
	}
	if fast.Breakdown.Other <= base.Breakdown.Other {
		t.Fatal("straggler surcharge not booked under Breakdown.Other")
	}
}

// Fail surrenders every outstanding request exactly once, keeps the sunk
// work in the Result, and leaves the stepper permanently drained.
func TestFailSurrendersOutstanding(t *testing.T) {
	opt := DefaultOptions(1)
	opt.KV = &kv.Options{BlockTokens: 32, Sharing: true}
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), opt)
	reqs := workload.GeneralQA().Poisson(12, 20, 7)
	st, err := e.NewStreamStepper(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := st.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	outstanding := st.Outstanding()
	if outstanding == 0 {
		t.Fatal("test needs outstanding requests at the crash instant")
	}
	cas := st.Fail()
	if len(cas) != outstanding {
		t.Fatalf("Fail returned %d casualties, want %d", len(cas), outstanding)
	}
	seen := map[int]bool{}
	for _, c := range cas {
		if seen[c.Request.ID] {
			t.Fatalf("request %d surrendered twice", c.Request.ID)
		}
		seen[c.Request.ID] = true
	}
	if st.HasWork() {
		t.Fatal("failed stepper still reports work")
	}
	if st.KVDemand() != 0 {
		t.Fatalf("failed stepper still reports KV demand %v", st.KVDemand())
	}
	info, err := st.Step()
	if err != nil || info.Kind != StepDrained {
		t.Fatalf("failed stepper Step = (%v, %v), want drained", info.Kind, err)
	}
	if err := st.Push(workload.Request{ID: 999, InputLen: 8, OutputLen: 2}); err == nil {
		t.Fatal("push into a failed stepper should error")
	}
	if again := st.Fail(); again != nil {
		t.Fatal("second Fail should return nil")
	}
	res := st.Finalize()
	if res.Tokens == 0 {
		t.Fatal("failed stepper lost its sunk tokens")
	}
	for _, rm := range res.Requests {
		if seen[rm.ID] {
			t.Fatalf("casualty %d still has a metrics record", rm.ID)
		}
	}
}

// Cancel withdraws exactly one request — pending or active — and the rest of
// the run completes untouched.
func TestCancelPendingAndActive(t *testing.T) {
	// Reference path: one iteration per Step, so requests are still active
	// (not macro-stepped to completion) at the cancel instants.
	opt := DefaultOptions(1)
	opt.FastPath = FastPathOff
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), opt)
	st, err := e.NewStreamStepper(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		if err := st.Push(workload.Request{ID: id, InputLen: 64, OutputLen: 32}); err != nil {
			t.Fatal(err)
		}
	}
	// Admit the first two (maxBatch 2); 3 and 4 stay pending.
	if _, err := st.Step(); err != nil {
		t.Fatal(err)
	}
	if c, ok, err := st.Cancel(3); err != nil || !ok || c.Admitted {
		t.Fatalf("cancel pending 3 = (%+v, %v, %v), want pending casualty", c, ok, err)
	}
	if c, ok, err := st.Cancel(1); err != nil || !ok || !c.Admitted {
		t.Fatalf("cancel active 1 = (%+v, %v, %v), want admitted casualty", c, ok, err)
	}
	if _, ok, err := st.Cancel(77); err != nil || ok {
		t.Fatalf("cancel of unknown ID should report not-found, got ok=%v err=%v", ok, err)
	}
	res := driveToDrain(t, st)
	got := map[int]bool{}
	for _, rm := range res.Requests {
		got[rm.ID] = true
	}
	if got[1] || got[3] {
		t.Fatalf("cancelled requests still in Result: %v", got)
	}
	if !got[2] || !got[4] {
		t.Fatalf("surviving requests missing from Result: %v", got)
	}
}

// A timeout-retry can land back on the replica that timed it out: the same
// ID enters the stepper twice. Finalize must report it once.
func TestFinalizeDedupesRetriedID(t *testing.T) {
	opt := DefaultOptions(1)
	opt.FastPath = FastPathOff
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), opt)
	st, err := e.NewStreamStepper(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(workload.Request{ID: 1, InputLen: 64, OutputLen: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Cancel(1); err != nil || !ok {
		t.Fatalf("cancel: ok=%v err=%v", ok, err)
	}
	// The retry re-enters with the grown context re-prefilled.
	if err := st.Push(workload.Request{ID: 1, InputLen: 66, OutputLen: 14}); err != nil {
		t.Fatal(err)
	}
	res := driveToDrain(t, st)
	if len(res.Requests) != 1 {
		t.Fatalf("retried ID reported %d times, want 1", len(res.Requests))
	}
	if res.Requests[0].ID != 1 || res.Requests[0].OutputTokens != 14 {
		t.Fatalf("unexpected retry record %+v", res.Requests[0])
	}
}
