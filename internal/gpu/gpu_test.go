package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/units"
)

func TestA100Spec(t *testing.T) {
	a := A100()
	if float64(a.PeakCompute) != 312e12 {
		t.Fatalf("peak compute = %v", a.PeakCompute)
	}
	if float64(a.PeakMemBW) != 1935e9 {
		t.Fatalf("peak bw = %v", a.PeakMemBW)
	}
	if float64(a.MemCapacity) != 80*units.GiB {
		t.Fatalf("capacity = %v", a.MemCapacity)
	}
}

func TestRidgePoint(t *testing.T) {
	// Fig. 2: the A100 roofline ridge sits at ~161 FLOP/byte. The FC kernel
	// crosses from memory- to compute-bound there.
	n := DefaultNode()
	ridge := n.RidgeAI()
	if math.Abs(ridge-161.24) > 0.1 {
		t.Fatalf("ridge AI = %.2f, want ≈161.2", ridge)
	}
}

func TestExecuteRoofline(t *testing.T) {
	n := DefaultNode()
	n.Spec.LaunchLatency = 0

	// Memory-bound: AI = 4 ≪ ridge.
	memBytes := units.GB(100)
	r := n.Execute(units.FLOPs(4*float64(memBytes)), memBytes)
	if r.ComputeBound {
		t.Fatal("AI=4 kernel should be memory-bound")
	}
	wantT := float64(memBytes) / float64(n.MemBW())
	if math.Abs(float64(r.Time)-wantT) > wantT*1e-9 {
		t.Fatalf("memory-bound time = %v, want %.4g", r.Time, wantT)
	}

	// Compute-bound: AI = 1000 ≫ ridge.
	r = n.Execute(units.FLOPs(1000*float64(memBytes)), memBytes)
	if !r.ComputeBound {
		t.Fatal("AI=1000 kernel should be compute-bound")
	}
	wantT = 1000 * float64(memBytes) / float64(n.ComputeRate())
	if math.Abs(float64(r.Time)-wantT) > wantT*1e-9 {
		t.Fatalf("compute-bound time = %v, want %.4g", r.Time, wantT)
	}
}

func TestCrossoverMatchesEffectiveRidge(t *testing.T) {
	// With efficiencies, the achieved ridge is peak_c×η_c / (peak_m×η_m).
	n := DefaultNode()
	n.Spec.LaunchLatency = 0
	effRidge := float64(n.ComputeRate()) / float64(n.MemBW())
	b := units.GB(1)
	below := n.Execute(units.FLOPs(0.9*effRidge*float64(b)), b)
	above := n.Execute(units.FLOPs(1.1*effRidge*float64(b)), b)
	if below.ComputeBound || !above.ComputeBound {
		t.Fatalf("crossover misplaced: below=%v above=%v (ridge %.1f)", below.ComputeBound, above.ComputeBound, effRidge)
	}
}

func TestEnergyAndIdle(t *testing.T) {
	n := DefaultNode()
	n.Spec.LaunchLatency = 0
	b := units.GB(100)
	r := n.Execute(units.FLOPs(float64(b)), b)
	// 6 GPUs × active power × time.
	wantE := 6 * float64(n.Spec.ActivePower) * float64(r.Time)
	if math.Abs(float64(r.Energy)-wantE) > wantE*1e-9 {
		t.Fatalf("energy = %v, want %.4g", r.Energy, wantE)
	}
	idle := n.IdleEnergy(units.Seconds(1))
	wantIdle := 6 * float64(n.Spec.IdlePower)
	if math.Abs(float64(idle)-wantIdle) > 1e-9 {
		t.Fatalf("idle energy = %v, want %v J", idle, wantIdle)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultNode().Validate(); err != nil {
		t.Fatalf("default node invalid: %v", err)
	}
	bad := DefaultNode()
	bad.Count = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero count should fail")
	}
	bad = DefaultNode()
	bad.Spec.ComputeEff = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("efficiency > 1 should fail")
	}
	bad = DefaultNode()
	bad.Spec.PeakMemBW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestPoolScaling(t *testing.T) {
	one := NewNode(A100(), 1)
	six := NewNode(A100(), 6)
	if r := float64(six.ComputeRate()) / float64(one.ComputeRate()); math.Abs(r-6) > 1e-9 {
		t.Fatalf("compute scaling = %v", r)
	}
	if r := float64(six.MemBW()) / float64(one.MemBW()); math.Abs(r-6) > 1e-9 {
		t.Fatalf("bandwidth scaling = %v", r)
	}
	if six.MemCapacity() != units.Bytes(6*80*units.GiB) {
		t.Fatalf("capacity = %v", six.MemCapacity())
	}
}

// Property: execution time is the roofline max — never below either bound —
// and monotone in work.
func TestRooflineProperty(t *testing.T) {
	n := DefaultNode()
	f := func(fRaw, bRaw uint32) bool {
		flops := units.FLOPs(float64(fRaw)*1e6 + 1)
		bytes := units.Bytes(float64(bRaw)*1e3 + 1)
		r := n.Execute(flops, bytes)
		ct := float64(flops) / float64(n.ComputeRate())
		mt := float64(bytes) / float64(n.MemBW())
		tMin := math.Max(ct, mt)
		got := float64(r.Time) - float64(n.Spec.LaunchLatency)
		if got < tMin*(1-1e-12) {
			return false
		}
		bigger := n.Execute(flops*2, bytes)
		return bigger.Time >= r.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
