// Package gpu models a computation-centric accelerator — the 6× NVIDIA A100
// node of the paper's baselines — as a roofline executor with calibrated
// efficiencies and a two-state power model.
//
// The paper itself evaluates the GPU analytically (Fig. 2's roofline uses the
// published 312 TFLOPS FP16 / 1935 GB/s numbers); this package does the same,
// adding achievable-fraction efficiencies so kernel times reflect realistic
// GEMM/GEMV utilisation rather than theoretical peaks.
package gpu

import (
	"fmt"
	"math"

	"github.com/papi-sim/papi/internal/units"
)

// Spec describes one GPU.
type Spec struct {
	Name          string
	PeakCompute   units.FLOPSRate      // dense FP16 tensor-core peak
	PeakMemBW     units.BytesPerSecond // HBM bandwidth
	MemCapacity   units.Bytes          // device memory
	ComputeEff    float64              // achievable fraction of peak compute
	MemoryEff     float64              // achievable fraction of peak bandwidth
	ActivePower   units.Watts          // board power while executing
	IdlePower     units.Watts          // board power while idle
	LaunchLatency units.Seconds        // per-kernel launch overhead
}

// A100 returns the NVIDIA A100 used throughout the evaluation (§7.1):
// 312 TFLOPS FP16, 1935 GB/s, 80 GB. Efficiencies are calibrated: large
// GEMMs reach ~85 % of tensor-core peak, decode GEMVs ~75 % of DRAM peak.
func A100() Spec {
	return Spec{
		Name:          "A100",
		PeakCompute:   units.TFLOPS(312),
		PeakMemBW:     units.GBps(1935),
		MemCapacity:   units.GiBytes(80),
		ComputeEff:    0.85,
		MemoryEff:     0.75,
		ActivePower:   500,
		IdlePower:     50,
		LaunchLatency: units.Microseconds(1.5),
	}
}

// Node is a pool of identical GPUs acting as one tensor-parallel executor
// (the paper's 6-GPU system).
type Node struct {
	Spec  Spec
	Count int
}

// NewNode builds a GPU pool.
func NewNode(spec Spec, count int) *Node { return &Node{Spec: spec, Count: count} }

// DefaultNode returns the paper's 6× A100 system.
func DefaultNode() *Node { return NewNode(A100(), 6) }

// Validate checks pool invariants.
func (n *Node) Validate() error {
	if n.Count <= 0 {
		return fmt.Errorf("gpu: count %d must be positive", n.Count)
	}
	if n.Spec.PeakCompute <= 0 || n.Spec.PeakMemBW <= 0 {
		return fmt.Errorf("gpu: %s has non-positive peak rates", n.Spec.Name)
	}
	if n.Spec.ComputeEff <= 0 || n.Spec.ComputeEff > 1 || n.Spec.MemoryEff <= 0 || n.Spec.MemoryEff > 1 {
		return fmt.Errorf("gpu: %s efficiencies out of (0,1]", n.Spec.Name)
	}
	return nil
}

// ComputeRate returns the pool's achievable compute throughput.
func (n *Node) ComputeRate() units.FLOPSRate {
	return units.FLOPSRate(float64(n.Count) * float64(n.Spec.PeakCompute) * n.Spec.ComputeEff)
}

// MemBW returns the pool's achievable memory bandwidth.
func (n *Node) MemBW() units.BytesPerSecond {
	return units.BytesPerSecond(float64(n.Count) * float64(n.Spec.PeakMemBW) * n.Spec.MemoryEff)
}

// MemCapacity returns the pool's total device memory.
func (n *Node) MemCapacity() units.Bytes {
	return units.Bytes(float64(n.Count) * float64(n.Spec.MemCapacity))
}

// RidgeAI returns the roofline ridge point in FLOP/byte: kernels above it are
// compute-bound on this node. For the A100 this is 312e12/1935e9 ≈ 161,
// which is where Fig. 2 places the FC kernel's transition.
func (n *Node) RidgeAI() float64 {
	return float64(n.Spec.PeakCompute) / float64(n.Spec.PeakMemBW)
}

// Result reports one kernel execution on the node.
type Result struct {
	Time         units.Seconds
	Energy       units.Joules
	ComputeBound bool
}

// Execute runs a kernel of the given arithmetic (flops) and memory traffic
// (bytes) on the whole pool and returns roofline time plus launch overhead.
func (n *Node) Execute(flops units.FLOPs, bytes units.Bytes) Result {
	ct := float64(flops) / float64(n.ComputeRate())
	mt := float64(bytes) / float64(n.MemBW())
	t := math.Max(ct, mt) + float64(n.Spec.LaunchLatency)
	return Result{
		Time:         units.Seconds(t),
		Energy:       units.Joules(float64(n.Spec.ActivePower) * float64(n.Count) * t),
		ComputeBound: ct >= mt,
	}
}

// IdleEnergy returns the pool's energy draw while idle for t.
func (n *Node) IdleEnergy(t units.Seconds) units.Joules {
	return units.Joules(float64(n.Spec.IdlePower) * float64(n.Count) * float64(t))
}
