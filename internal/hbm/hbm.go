// Package hbm models the organisation, area and power constraints of
// PIM-enabled HBM3 stacks (paper §6.1–6.2).
//
// The package owns the three published area constants (bank 0.83 mm², FPU
// 0.1025 mm², die cap 121 mm²), the bank-count solver of Eq. (3)/(4), the
// 116 W per-cube power budget, and the stack configurations used by every
// evaluated design: plain HBM3, AttAcc-style 1P1B, HBM-PIM/Attn-PIM-style
// 1P2B, and the FC-PIM 4P1B device.
package hbm

import (
	"fmt"

	"github.com/papi-sim/papi/internal/units"
)

// Published constants (paper §6.1, CACTI-3DD at 22 nm and [61]).
const (
	BankAreaMM2   = 0.83   // one HBM bank, memory array + peripherals
	FPUAreaMM2    = 0.1025 // one PIM floating-point unit
	DieAreaCapMM2 = 121.0  // maximum area of a single HBM die

	// PowerBudgetW is the power budget of an 8-high 16 GB HBM3 cube following
	// the JEDEC IDD7 methodology (paper footnote 2).
	PowerBudgetW = 116.0

	// DiesPerStack is the stack height (8-high, §6.1).
	DiesPerStack = 8

	// BankCapacityBytes is one bank's capacity: 128 banks/die × 8 dies ×
	// 16 MiB = 16 GiB, the standard stack capacity of §7.1.
	BankCapacityBytes = 16 * units.MiB

	// BanksPerGroup is the bank-group width used when rounding the solver
	// result (banks are physically grouped in fours).
	BanksPerGroup = 4
)

// FPU describes the per-bank processing unit: a 2-lane FP16 MAC at 666 MHz.
// Each lane performs one multiply-accumulate per cycle on an FP16 operand
// pair, so the unit sustains 2.664 GFLOP/s while consuming 2.664 GB/s of
// weight stream (1 FLOP per weight byte in FP16 GEMV). The rate is chosen so
// one FPU exactly matches one bank's sustained streaming bandwidth — the
// paper's 1P1B design point (§6.2).
type FPU struct {
	Lanes             int
	ClockHz           float64
	FlopsPerLaneCycle float64
}

// DefaultFPU returns the FPU used by every PIM configuration in the paper.
func DefaultFPU() FPU {
	return FPU{Lanes: 2, ClockHz: 666e6, FlopsPerLaneCycle: 2}
}

// Rate returns the unit's compute throughput.
func (f FPU) Rate() units.FLOPSRate {
	return units.FLOPSRate(float64(f.Lanes) * f.ClockHz * f.FlopsPerLaneCycle)
}

// StreamDemand returns the weight-stream bandwidth the unit consumes when
// fully busy (FP16: two bytes per MAC, i.e. one byte per FLOP).
func (f FPU) StreamDemand() units.BytesPerSecond {
	return units.BytesPerSecond(float64(f.Rate()))
}

// PIMConfig is an "xPyB" PIM organisation: x FPUs shared across y banks.
type PIMConfig struct {
	FPUs  int // x: FPUs per group of banks
	Banks int // y: banks per group
}

// Common configurations from the paper.
var (
	// Plain is a non-PIM HBM3 die (no FPUs).
	Plain = PIMConfig{FPUs: 0, Banks: 1}
	// OnePerBank is AttAcc's 1P1B configuration.
	OnePerBank = PIMConfig{FPUs: 1, Banks: 1}
	// OnePerTwoBanks is Samsung HBM-PIM's and PAPI Attn-PIM's 1P2B.
	OnePerTwoBanks = PIMConfig{FPUs: 1, Banks: 2}
	// TwoPerBank is the 2P1B point explored in Fig. 7(c).
	TwoPerBank = PIMConfig{FPUs: 2, Banks: 1}
	// FourPerBank is PAPI FC-PIM's 4P1B.
	FourPerBank = PIMConfig{FPUs: 4, Banks: 1}
)

// String renders the configuration in the paper's xPyB notation.
func (c PIMConfig) String() string {
	if c.FPUs == 0 {
		return "plain"
	}
	return fmt.Sprintf("%dP%dB", c.FPUs, c.Banks)
}

// FPUsPerBank returns the average FPU count per bank.
func (c PIMConfig) FPUsPerBank() float64 {
	if c.Banks == 0 {
		return 0
	}
	return float64(c.FPUs) / float64(c.Banks)
}

// AreaPerBankMM2 returns the die area consumed per bank, including that
// bank's share of the FPUs (the left side of Eq. 3 divided by m).
func (c PIMConfig) AreaPerBankMM2() float64 {
	return BankAreaMM2 + c.FPUsPerBank()*FPUAreaMM2
}

// MaxBanksPerDie solves Eq. (3): the largest bank count whose total area
// (banks plus their FPU share) fits in the die cap.
func (c PIMConfig) MaxBanksPerDie() int {
	per := c.AreaPerBankMM2()
	if per <= 0 {
		return 0
	}
	return int(DieAreaCapMM2 / per)
}

// BanksPerDie rounds MaxBanksPerDie down to a bank-group multiple — the
// physically buildable count. For 4P1B this yields the paper's 96 banks.
func (c PIMConfig) BanksPerDie() int {
	m := c.MaxBanksPerDie()
	return m - m%BanksPerGroup
}

// Stack is one HBM3 cube with a uniform PIM configuration on every die.
type Stack struct {
	Config      PIMConfig
	FPU         FPU
	BanksPerDie int
	Dies        int

	// BankStreamBW is the sustained per-bank read bandwidth. The default
	// (2.664 GB/s) is calibrated against the command-level DRAM simulator
	// (internal/dram) and equals one FPU's stream demand, making 1P1B the
	// balanced design point.
	BankStreamBW units.BytesPerSecond
}

// DefaultBankStreamBW is the per-bank sustained streaming bandwidth used by
// the analytic model.
var DefaultBankStreamBW = units.GBps(2.664)

// NewStack builds a stack for the configuration, solving the area constraint
// for the bank count.
func NewStack(c PIMConfig) Stack {
	return Stack{
		Config:       c,
		FPU:          DefaultFPU(),
		BanksPerDie:  c.BanksPerDie(),
		Dies:         DiesPerStack,
		BankStreamBW: DefaultBankStreamBW,
	}
}

// Banks returns the stack's total bank count.
func (s Stack) Banks() int { return s.BanksPerDie * s.Dies }

// FPUs returns the stack's total FPU count.
func (s Stack) FPUs() int {
	if s.Config.Banks == 0 {
		return 0
	}
	return s.Banks() * s.Config.FPUs / s.Config.Banks
}

// Capacity returns the stack's memory capacity.
func (s Stack) Capacity() units.Bytes {
	return units.Bytes(float64(s.Banks()) * BankCapacityBytes)
}

// ComputeRate returns the stack's aggregate FPU throughput.
func (s Stack) ComputeRate() units.FLOPSRate {
	return units.FLOPSRate(float64(s.FPUs()) * float64(s.FPU.Rate()))
}

// StreamBW returns the stack's aggregate bank streaming bandwidth (the DRAM
// supply side).
func (s Stack) StreamBW() units.BytesPerSecond {
	return units.BytesPerSecond(float64(s.Banks()) * float64(s.BankStreamBW))
}

// EffectiveBW returns the bandwidth at which the FPUs can consume data: the
// lesser of DRAM supply and FPU demand. For 1P2B this is FPU-limited (half
// the banks' supply), which is the source of the paper's ~1.7× attention
// slowdown of Attn-PIM versus AttAcc (Fig. 12).
func (s Stack) EffectiveBW() units.BytesPerSecond {
	demand := float64(s.FPUs()) * float64(s.FPU.StreamDemand())
	supply := float64(s.StreamBW())
	if demand < supply {
		return units.BytesPerSecond(demand)
	}
	return units.BytesPerSecond(supply)
}

// DieArea returns the occupied area of one die in mm².
func (s Stack) DieArea() float64 {
	return float64(s.BanksPerDie) * s.Config.AreaPerBankMM2()
}

// Validate checks the stack against the physical constraints. It reports an
// error naming the violated constraint, used by failure-injection tests and
// by the design solver in internal/core.
func (s Stack) Validate() error {
	if s.BanksPerDie <= 0 {
		return fmt.Errorf("hbm: %s stack has no banks", s.Config)
	}
	if area := s.DieArea(); area > DieAreaCapMM2 {
		return fmt.Errorf("hbm: %s die area %.2f mm² exceeds cap %.0f mm²", s.Config, area, DieAreaCapMM2)
	}
	if s.Dies != DiesPerStack {
		return fmt.Errorf("hbm: stack height %d, want %d", s.Dies, DiesPerStack)
	}
	return nil
}

// Preset stacks for the evaluated designs (§7.1).

// standardBanksPerDie is the plain HBM3 die floorplan: 128 banks per die,
// giving the standard 16 GB stack of §7.1. The area solver would allow a few
// more banks (144 plain, 136 for 1P2B), but commodity dies keep the standard
// floorplan; only FC-PIM rebalances area between banks and FPUs.
const standardBanksPerDie = 128

// PlainStack returns a non-PIM 16 GB HBM3 stack (the GPU-local memory of the
// A100+AttAcc and A100+HBM-PIM baselines).
func PlainStack() Stack {
	s := NewStack(Plain)
	s.BanksPerDie = standardBanksPerDie
	return s
}

// AttAccStack returns the AttAcc 1P1B device: 1024 banks, 1024 FPUs, 16 GB.
// The solver's area-max for 1P1B is exactly the standard 128 banks/die.
func AttAccStack() Stack { return NewStack(OnePerBank) }

// HBMPIMStack returns the Samsung HBM-PIM / PAPI Attn-PIM 1P2B device:
// 1024 banks, 512 FPUs, 16 GB (standard floorplan, not the area-max 136).
func HBMPIMStack() Stack {
	s := NewStack(OnePerTwoBanks)
	s.BanksPerDie = standardBanksPerDie
	return s
}

// FCPIMStack returns the PAPI FC-PIM 4P1B device: 96 banks/die → 768 banks,
// 3072 FPUs, 12 GB.
func FCPIMStack() Stack { return NewStack(FourPerBank) }
