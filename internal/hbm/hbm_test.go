package hbm

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/units"
)

func TestEq4BankSolver(t *testing.T) {
	// Paper Eq. (4): m(0.1025×4 + 0.83) ≤ 121 ⇒ m ≤ 97, design uses 96.
	if got := FourPerBank.MaxBanksPerDie(); got != 97 {
		t.Fatalf("4P1B max banks = %d, want 97", got)
	}
	if got := FourPerBank.BanksPerDie(); got != 96 {
		t.Fatalf("4P1B banks/die = %d, want 96 (the paper's design point)", got)
	}
}

func TestBankSolverOtherConfigs(t *testing.T) {
	cases := []struct {
		cfg  PIMConfig
		want int
	}{
		{Plain, 144},          // 121/0.83 = 145.8 → 145 → 144
		{OnePerBank, 128},     // 121/0.9325 = 129.7 → 129 → 128
		{OnePerTwoBanks, 136}, // 121/0.88125 = 137.3 → 137 → 136
		{TwoPerBank, 116},     // 121/1.035 = 116.9 → 116
	}
	for _, c := range cases {
		if got := c.cfg.BanksPerDie(); got != c.want {
			t.Errorf("%s banks/die = %d, want %d", c.cfg, got, c.want)
		}
	}
}

func TestPresetStackShapes(t *testing.T) {
	att := AttAccStack()
	if att.Banks() != 1024 || att.FPUs() != 1024 {
		t.Fatalf("AttAcc stack = %d banks / %d FPUs, want 1024/1024", att.Banks(), att.FPUs())
	}
	fc := FCPIMStack()
	if fc.Banks() != 768 || fc.FPUs() != 3072 {
		t.Fatalf("FC-PIM stack = %d banks / %d FPUs, want 768/3072", fc.Banks(), fc.FPUs())
	}
	// FC-PIM capacity is 12 GB (§7.1) because it trades banks for FPUs.
	if got := fc.Capacity(); got != units.Bytes(768*16*units.MiB) {
		t.Fatalf("FC-PIM capacity = %v", got)
	}
	if gib := float64(fc.Capacity()) / units.GiB; math.Abs(gib-12) > 1e-9 {
		t.Fatalf("FC-PIM capacity = %.1f GiB, want 12", gib)
	}
	// Standard stacks are 16 GB.
	hp := HBMPIMStack()
	if hp.Banks() != 1024 || hp.FPUs() != 512 {
		t.Fatalf("HBM-PIM stack = %d banks / %d FPUs, want 1024/512", hp.Banks(), hp.FPUs())
	}
	if gib := float64(hp.Capacity()) / units.GiB; math.Abs(gib-16) > 1e-9 {
		t.Fatalf("HBM-PIM capacity = %.1f GiB, want 16", gib)
	}
	// Note: Attn-PIM/HBM-PIM keeps 128 banks/die (standard capacity) rather
	// than the area-max 136: capacity is the binding design goal there.
}

func TestHBMPIMKeepsStandardBankCount(t *testing.T) {
	// The solver says 1P2B could fit 136 banks, but the commercial HBM-PIM
	// die keeps the plain 128-bank floorplan. Model that choice explicitly.
	s := HBMPIMStack()
	if s.BanksPerDie != 128 {
		t.Fatalf("HBM-PIM banks/die = %d, want 128", s.BanksPerDie)
	}
}

func TestFPURates(t *testing.T) {
	f := DefaultFPU()
	wantRate := 2 * 666e6 * 2.0 // lanes × clock × flops/lane/cycle
	if math.Abs(float64(f.Rate())-wantRate) > 1 {
		t.Fatalf("FPU rate = %v, want %v", f.Rate(), wantRate)
	}
	if math.Abs(float64(f.StreamDemand())-wantRate) > 1 {
		t.Fatalf("FPU stream demand = %v, want 1 B per FLOP", f.StreamDemand())
	}
}

func TestStackRates(t *testing.T) {
	att := AttAccStack()
	// 1024 FPUs × 2.664 GFLOP/s ≈ 2.73 TFLOP/s.
	if got := float64(att.ComputeRate()); math.Abs(got-1024*2.664e9) > 1e6 {
		t.Fatalf("AttAcc compute = %v", att.ComputeRate())
	}
	// 1P1B: effective bandwidth equals supply equals demand.
	if got, want := float64(att.EffectiveBW()), float64(att.StreamBW()); math.Abs(got-want) > 1 {
		t.Fatalf("1P1B effective bw %v != supply %v", att.EffectiveBW(), att.StreamBW())
	}
	// 1P2B: FPU-limited at exactly half the banks' supply.
	hp := HBMPIMStack()
	if got, want := float64(hp.EffectiveBW()), float64(hp.StreamBW())/2; math.Abs(got-want) > 1 {
		t.Fatalf("1P2B effective bw %v, want half of supply %v", hp.EffectiveBW(), hp.StreamBW())
	}
}

func TestDieAreaWithinCap(t *testing.T) {
	for _, s := range []Stack{PlainStack(), AttAccStack(), HBMPIMStack(), FCPIMStack()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Config, err)
		}
		if s.DieArea() > DieAreaCapMM2 {
			t.Errorf("%s die area %.2f exceeds cap", s.Config, s.DieArea())
		}
	}
}

func TestValidateFailures(t *testing.T) {
	s := FCPIMStack()
	s.BanksPerDie = 0
	if err := s.Validate(); err == nil {
		t.Error("zero banks should fail validation")
	}
	s = FCPIMStack()
	s.BanksPerDie = 200 // deliberately over-area
	if err := s.Validate(); err == nil {
		t.Error("over-area die should fail validation")
	}
	s = FCPIMStack()
	s.Dies = 4
	if err := s.Validate(); err == nil {
		t.Error("wrong stack height should fail validation")
	}
}

func TestConfigString(t *testing.T) {
	if got := FourPerBank.String(); got != "4P1B" {
		t.Errorf("String = %q", got)
	}
	if got := OnePerTwoBanks.String(); got != "1P2B" {
		t.Errorf("String = %q", got)
	}
	if got := Plain.String(); got != "plain" {
		t.Errorf("String = %q", got)
	}
}

// Property: the solver never violates the area constraint, and adding FPUs
// never increases the feasible bank count.
func TestSolverProperty(t *testing.T) {
	f := func(fpusRaw, banksRaw uint8) bool {
		fpus := int(fpusRaw % 8)
		banks := int(banksRaw%4) + 1
		cfg := PIMConfig{FPUs: fpus, Banks: banks}
		m := cfg.BanksPerDie()
		if m < 0 {
			return false
		}
		if float64(m)*cfg.AreaPerBankMM2() > DieAreaCapMM2+1e-9 {
			return false
		}
		denser := PIMConfig{FPUs: fpus + 1, Banks: banks}
		return denser.BanksPerDie() <= m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: effective bandwidth is min(supply, demand) and never exceeds
// either side.
func TestEffectiveBWProperty(t *testing.T) {
	f := func(cfgIdx uint8) bool {
		cfgs := []PIMConfig{OnePerBank, OnePerTwoBanks, TwoPerBank, FourPerBank}
		s := NewStack(cfgs[int(cfgIdx)%len(cfgs)])
		eff := float64(s.EffectiveBW())
		supply := float64(s.StreamBW())
		demand := float64(s.FPUs()) * float64(s.FPU.StreamDemand())
		return eff <= supply+1 && eff <= demand+1 && eff > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
