// Package model describes transformer LLMs at the granularity the simulator
// needs: per-layer kernel shapes (QKV generation, multi-head attention,
// projection, feed-forward — Fig. 1(a)), FLOP and byte counts as functions of
// decoding parallelism, weight and KV-cache footprints, and the arithmetic
// intensity formulas of §5.1 (Eq. 1 and the RLP×TLP estimator of Eq. 2).
//
// Counting conventions (matching the paper's roofline analysis):
//   - a multiply-accumulate is 2 FLOPs;
//   - FP16 everywhere: 2 bytes per parameter/activation element;
//   - hence an FC kernel over weights of W bytes with n tokens in flight
//     performs exactly n×W FLOPs (n × W/2 params × 2 FLOPs/param).
package model

import (
	"fmt"

	"github.com/papi-sim/papi/internal/units"
)

// BytesPerElement is the FP16 data size used throughout the evaluation.
const BytesPerElement = 2

// Config describes one transformer decoder-only LLM.
type Config struct {
	Name        string
	Hidden      int // h, the hidden dimension
	Layers      int
	Heads       int
	FFNDim      int // intermediate (feed-forward) dimension
	FFNMatrices int // 2 for GELU MLPs (up+down), 3 for SwiGLU (gate+up+down)
	VocabSize   int
	MaxSeqLen   int
}

// Published model configurations used in the evaluation (§7.1 and Fig. 2).

// OPT30B returns the OPT-30B configuration (Fig. 2's roofline study).
func OPT30B() Config {
	return Config{Name: "OPT-30B", Hidden: 7168, Layers: 48, Heads: 56,
		FFNDim: 28672, FFNMatrices: 2, VocabSize: 50272, MaxSeqLen: 2048}
}

// LLaMA65B returns the LLaMA-65B configuration (SwiGLU FFN).
func LLaMA65B() Config {
	return Config{Name: "LLaMA-65B", Hidden: 8192, Layers: 80, Heads: 64,
		FFNDim: 22016, FFNMatrices: 3, VocabSize: 32000, MaxSeqLen: 2048}
}

// GPT3_66B returns the GPT-3 66B configuration (h = 9216, per §5.1's Fig. 6).
func GPT3_66B() Config {
	return Config{Name: "GPT-3 66B", Hidden: 9216, Layers: 64, Heads: 72,
		FFNDim: 36864, FFNMatrices: 2, VocabSize: 50257, MaxSeqLen: 2048}
}

// GPT3_175B returns the GPT-3 175B configuration (h = 12288, §5.1).
func GPT3_175B() Config {
	return Config{Name: "GPT-3 175B", Hidden: 12288, Layers: 96, Heads: 96,
		FFNDim: 49152, FFNMatrices: 2, VocabSize: 50257, MaxSeqLen: 2048}
}

// Draft models for speculative decoding (§2.2.2: "a small draft model").

// OPT125M returns a small draft model for the GPT/OPT family.
func OPT125M() Config {
	return Config{Name: "OPT-125M", Hidden: 768, Layers: 12, Heads: 12,
		FFNDim: 3072, FFNMatrices: 2, VocabSize: 50272, MaxSeqLen: 2048}
}

// LLaMA7B returns the draft model for the LLaMA family.
func LLaMA7B() Config {
	return Config{Name: "LLaMA-7B", Hidden: 4096, Layers: 32, Heads: 32,
		FFNDim: 11008, FFNMatrices: 3, VocabSize: 32000, MaxSeqLen: 2048}
}

// All returns the four evaluation models.
func All() []Config {
	return []Config{OPT30B(), LLaMA65B(), GPT3_66B(), GPT3_175B()}
}

// ByName looks a configuration up by its display name.
func ByName(name string) (Config, error) {
	for _, c := range append(All(), OPT125M(), LLaMA7B()) {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Hidden <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.FFNDim <= 0 {
		return fmt.Errorf("model: %s has non-positive dimensions", c.Name)
	}
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("model: %s hidden %d not divisible by %d heads", c.Name, c.Hidden, c.Heads)
	}
	if c.FFNMatrices != 2 && c.FFNMatrices != 3 {
		return fmt.Errorf("model: %s FFNMatrices = %d, want 2 or 3", c.Name, c.FFNMatrices)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// Parameter and footprint accounting ---------------------------------------

// FCParamsPerLayer returns the FC parameter count of one decoder layer:
// QKV (3h²) + projection (h²) + FFN matrices.
func (c Config) FCParamsPerLayer() int64 {
	h := int64(c.Hidden)
	return 4*h*h + int64(c.FFNMatrices)*h*int64(c.FFNDim)
}

// Params returns the total parameter count (decoder layers + embedding).
func (c Config) Params() int64 {
	return int64(c.Layers)*c.FCParamsPerLayer() + int64(c.VocabSize)*int64(c.Hidden)
}

// FCWeightBytesPerLayer returns the bytes of FC weights streamed per layer.
func (c Config) FCWeightBytesPerLayer() units.Bytes {
	return units.Bytes(c.FCParamsPerLayer() * BytesPerElement)
}

// WeightBytes returns the full model footprint in FP16.
func (c Config) WeightBytes() units.Bytes {
	return units.Bytes(c.Params() * BytesPerElement)
}

// KVBytesPerTokenPerLayer returns the KV-cache growth per generated token per
// layer (K and V vectors, FP16).
func (c Config) KVBytesPerTokenPerLayer() units.Bytes {
	return units.Bytes(2 * c.Hidden * BytesPerElement)
}

// KVBytes returns the KV-cache footprint of one request at the given
// sequence length, across all layers.
func (c Config) KVBytes(seqLen int) units.Bytes {
	return units.Bytes(float64(seqLen)) * c.KVBytesPerTokenPerLayer() * units.Bytes(c.Layers)
}

// Kernel shapes --------------------------------------------------------------

// KernelKind identifies the four decoder kernels of Fig. 1(a).
type KernelKind int

// Decoder kernel kinds.
const (
	KindQKV KernelKind = iota
	KindAttention
	KindProjection
	KindFFN
)

// String names the kernel kind.
func (k KernelKind) String() string {
	switch k {
	case KindQKV:
		return "qkv"
	case KindAttention:
		return "attention"
	case KindProjection:
		return "projection"
	case KindFFN:
		return "ffn"
	}
	return fmt.Sprintf("KernelKind(%d)", int(k))
}

// IsFC reports whether the kernel is a fully-connected (weight-streaming)
// kernel — the kind PAPI schedules dynamically.
func (k KernelKind) IsFC() bool { return k != KindAttention }

// Kernel is one decoder kernel's shape for one layer of one decoding
// iteration.
type Kernel struct {
	Kind  KernelKind
	Flops units.FLOPs
	// WeightBytes is the unique weight data streamed (FC kernels only).
	WeightBytes units.Bytes
	// KVBytes is the unique KV-cache data streamed (attention only).
	KVBytes units.Bytes
	// ActivationBytes is input+output activation traffic, which crosses
	// interconnects when the kernel's producer/consumer live elsewhere.
	ActivationBytes units.Bytes
}

// UniqueBytes returns the kernel's streamed data volume (the denominator of
// its arithmetic intensity, excluding activations for the large-h regime).
func (k Kernel) UniqueBytes() units.Bytes { return k.WeightBytes + k.KVBytes }

// AI returns the kernel's arithmetic intensity in FLOP/byte over all traffic.
func (k Kernel) AI() float64 {
	return units.Intensity(k.Flops, k.WeightBytes+k.KVBytes+k.ActivationBytes)
}

// QKVKernel returns the QKV-generation kernel with n tokens in flight
// (n = RLP×TLP).
func (c Config) QKVKernel(n int) Kernel {
	h := float64(c.Hidden)
	w := 3 * h * h * BytesPerElement
	return Kernel{
		Kind:            KindQKV,
		Flops:           units.FLOPs(float64(n) * w), // n × W bytes × 1 FLOP/B
		WeightBytes:     units.Bytes(w),
		ActivationBytes: units.Bytes(float64(n) * (h + 3*h) * BytesPerElement),
	}
}

// ProjectionKernel returns the attention-output projection kernel.
func (c Config) ProjectionKernel(n int) Kernel {
	h := float64(c.Hidden)
	w := h * h * BytesPerElement
	return Kernel{
		Kind:            KindProjection,
		Flops:           units.FLOPs(float64(n) * w),
		WeightBytes:     units.Bytes(w),
		ActivationBytes: units.Bytes(float64(n) * 2 * h * BytesPerElement),
	}
}

// FFNKernel returns the feed-forward kernel (both/all matrices).
func (c Config) FFNKernel(n int) Kernel {
	h, f := float64(c.Hidden), float64(c.FFNDim)
	w := float64(c.FFNMatrices) * h * f * BytesPerElement
	return Kernel{
		Kind:            KindFFN,
		Flops:           units.FLOPs(float64(n) * w),
		WeightBytes:     units.Bytes(w),
		ActivationBytes: units.Bytes(float64(n) * 2 * h * BytesPerElement),
	}
}

// AttentionKernel returns the multi-head attention kernel for a batch whose
// requests have the given KV lengths, each decoding tlp speculative tokens.
//
// Per request: QK^T over an L×h cache (2·tlp·L·h FLOPs) plus PV (same), with
// the K and V caches (2·L·h elements) streamed once and reused across the
// tlp speculative tokens — batching provides no reuse here (§3.1), which is
// why attention AI ≈ TLP regardless of batch size.
func (c Config) AttentionKernel(tlp int, kvLens []int) Kernel {
	h := float64(c.Hidden)
	var flops, kv, act float64
	for _, L := range kvLens {
		l := float64(L)
		flops += 4 * float64(tlp) * l * h
		kv += 4 * l * h // 2Lh elements × 2 bytes
		act += float64(tlp) * 4 * h * BytesPerElement
	}
	return Kernel{
		Kind:            KindAttention,
		Flops:           units.FLOPs(flops),
		KVBytes:         units.Bytes(kv),
		ActivationBytes: units.Bytes(act),
	}
}

// AttentionKernelSum is the incremental form of AttentionKernel: the kernel
// depends on the batch's KV lengths only through their sum, so a caller that
// maintains ΣkvLen incrementally (the serving fast path) can derive the
// kernel in O(1) instead of walking the batch. All per-request terms are
// integer-valued and far below 2⁵³, so the closed form is bit-identical to
// the per-request summation; a test pins this against AttentionKernel.
//
//papivet:noalloc
func (c Config) AttentionKernelSum(tlp, sumKV, rlp int) Kernel {
	h := float64(c.Hidden)
	l := float64(sumKV)
	return Kernel{
		Kind:            KindAttention,
		Flops:           units.FLOPs(4 * float64(tlp) * l * h),
		KVBytes:         units.Bytes(4 * l * h),
		ActivationBytes: units.Bytes(float64(rlp) * (float64(tlp) * 4 * h * BytesPerElement)),
	}
}

// LayerKernels returns the four kernels of one decoder layer for a decoding
// iteration with rlp requests (KV lengths given) and tlp speculative tokens.
func (c Config) LayerKernels(tlp int, kvLens []int) []Kernel {
	n := len(kvLens) * tlp
	return []Kernel{
		c.QKVKernel(n),
		c.AttentionKernel(tlp, kvLens),
		c.ProjectionKernel(n),
		c.FFNKernel(n),
	}
}

// FCIterationKernel aggregates all FC work of one full decoding iteration
// (all layers) into a single kernel, the granularity at which the PAPI
// scheduler places FC work.
func (c Config) FCIterationKernel(n int) Kernel {
	w := float64(c.FCWeightBytesPerLayer()) * float64(c.Layers)
	h := float64(c.Hidden)
	return Kernel{
		Kind:            KindFFN,
		Flops:           units.FLOPs(float64(n) * w),
		WeightBytes:     units.Bytes(w),
		ActivationBytes: units.Bytes(float64(n) * 2 * h * BytesPerElement * float64(c.Layers)),
	}
}

// PrefillWork returns the aggregate prefill-phase work for a batch of input
// lengths: FC over every input token plus causal attention (~L²h per request).
func (c Config) PrefillWork(inputLens []int) Kernel {
	var tokens float64
	var attnFlops float64
	h := float64(c.Hidden)
	for _, L := range inputLens {
		l := float64(L)
		tokens += l
		attnFlops += 2 * l * l * h * float64(c.Layers)
	}
	w := float64(c.FCWeightBytesPerLayer()) * float64(c.Layers)
	return Kernel{
		Kind:        KindQKV,
		Flops:       units.FLOPs(tokens*w + attnFlops),
		WeightBytes: units.Bytes(w),
	}
}

// Arithmetic intensity (§5.1) ------------------------------------------------

// ExactFCAI evaluates Eq. (1): the measured arithmetic intensity of an h×h FC
// kernel with n = RLP×TLP tokens in flight,
//
//	AI = (n·h²·2) / ((2·n·h + h²)·2).
func ExactFCAI(n, h int) float64 {
	nf, hf := float64(n), float64(h)
	return (nf * hf * hf * 2) / ((2*nf*hf + hf*hf) * 2)
}

// EstimatedAI evaluates Eq. (2): the scheduler's RLP×TLP estimator.
func EstimatedAI(rlp, tlp int) float64 { return float64(rlp) * float64(tlp) }
