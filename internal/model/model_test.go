package model

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/units"
)

func TestParameterCounts(t *testing.T) {
	// Each configuration must land near its nominal parameter count.
	cases := []struct {
		cfg  Config
		want float64 // billions
		tol  float64
	}{
		{OPT30B(), 30, 0.05},
		{LLaMA65B(), 65, 0.05},
		{GPT3_66B(), 66, 0.05},
		{GPT3_175B(), 175, 0.05},
		{LLaMA7B(), 6.7, 0.08},
		{OPT125M(), 0.125, 0.3},
	}
	for _, c := range cases {
		got := float64(c.cfg.Params()) / 1e9
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s params = %.2fB, want ≈%.1fB", c.cfg.Name, got, c.want)
		}
	}
}

func TestGPT175BWeightFootprint(t *testing.T) {
	// §7.1: GPT-3 175B requires 350 GB of memory in FP16.
	gb := float64(GPT3_175B().WeightBytes()) / 1e9
	if math.Abs(gb-350) > 10 {
		t.Fatalf("GPT-3 175B weights = %.0f GB, want ≈350", gb)
	}
}

func TestValidateAll(t *testing.T) {
	for _, c := range append(All(), OPT125M(), LLaMA7B()) {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateFailures(t *testing.T) {
	c := LLaMA65B()
	c.Hidden = 0
	if err := c.Validate(); err == nil {
		t.Error("zero hidden should fail")
	}
	c = LLaMA65B()
	c.Heads = 7 // 8192 % 7 != 0
	if err := c.Validate(); err == nil {
		t.Error("indivisible heads should fail")
	}
	c = LLaMA65B()
	c.FFNMatrices = 4
	if err := c.Validate(); err == nil {
		t.Error("FFNMatrices=4 should fail")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("GPT-3 175B")
	if err != nil || c.Hidden != 12288 {
		t.Fatalf("ByName = %+v, %v", c, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestKVFootprint(t *testing.T) {
	// §3.2(b): a GPT-3 175B request with input+output 2048 each (seq 4096)
	// holds 2 × 4096 × 12288 × 2 B × 96 layers ≈ 19.3 GB of KV cache.
	c := GPT3_175B()
	got := float64(c.KVBytes(4096)) / 1e9
	want := 2.0 * 4096 * 12288 * 2 * 96 / 1e9
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("KV bytes = %.2f GB, want %.2f", got, want)
	}
}

func TestFCFlopsEqualNTimesWeightBytes(t *testing.T) {
	// The package's counting convention: FC FLOPs = n × weight bytes.
	c := GPT3_66B()
	for _, n := range []int{1, 4, 16, 256} {
		k := c.FCIterationKernel(n)
		if math.Abs(float64(k.Flops)-float64(n)*float64(k.WeightBytes)) > 1 {
			t.Fatalf("n=%d: flops %v != n×weights %v", n, k.Flops, units.FLOPs(float64(n)*float64(k.WeightBytes)))
		}
	}
}

func TestLayerKernelsSumToIteration(t *testing.T) {
	c := LLaMA65B()
	tlp := 4
	kv := []int{100, 200, 300, 400}
	layer := c.LayerKernels(tlp, kv)
	if len(layer) != 4 {
		t.Fatalf("layer kernels = %d, want 4", len(layer))
	}
	var fcW units.Bytes
	for _, k := range layer {
		if k.Kind.IsFC() {
			fcW += k.WeightBytes
		}
	}
	if fcW != c.FCWeightBytesPerLayer() {
		t.Fatalf("layer FC weights %v != per-layer total %v", fcW, c.FCWeightBytesPerLayer())
	}
	iter := c.FCIterationKernel(len(kv) * tlp)
	if got, want := float64(iter.WeightBytes), float64(fcW)*float64(c.Layers); math.Abs(got-want) > 1 {
		t.Fatalf("iteration weights %v != layers × per-layer %v", iter.WeightBytes, want)
	}
}

func TestAttentionAIIndependentOfBatch(t *testing.T) {
	// §3.1: batching gives attention no data reuse — its AI depends only on
	// TLP (plus lower-order softmax terms), not on batch size.
	c := OPT30B()
	tlp := 8
	small := c.AttentionKernel(tlp, []int{512, 512})
	big := c.AttentionKernel(tlp, []int{512, 512, 512, 512, 512, 512, 512, 512})
	aiSmall := units.Intensity(small.Flops, small.KVBytes)
	aiBig := units.Intensity(big.Flops, big.KVBytes)
	if math.Abs(aiSmall-aiBig) > 1e-9 {
		t.Fatalf("attention AI changed with batch: %v vs %v", aiSmall, aiBig)
	}
	if math.Abs(aiSmall-float64(tlp)) > 1e-9 {
		t.Fatalf("attention AI = %v, want TLP = %d", aiSmall, tlp)
	}
}

func TestFCAIGrowsWithBatchAndTLP(t *testing.T) {
	// §3.1: FC arithmetic intensity grows with both RLP and TLP.
	c := OPT30B()
	prev := 0.0
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		k := c.FFNKernel(n)
		ai := k.AI()
		if ai <= prev {
			t.Fatalf("FC AI not increasing at n=%d: %v <= %v", n, ai, prev)
		}
		prev = ai
	}
}

func TestExactAIMatchesEstimateForLargeH(t *testing.T) {
	// §5.1: for large h, AI ≈ RLP×TLP. At h=12288 (GPT-3 175B) the estimate
	// must be within 5 % up to n = 128.
	h := GPT3_175B().Hidden
	for _, n := range []int{1, 8, 32, 128} {
		exact := ExactFCAI(n, h)
		est := EstimatedAI(n, 1)
		relErr := math.Abs(exact-est) / est
		if relErr > 0.05 {
			t.Errorf("n=%d: exact %v vs estimate %v (err %.3f)", n, exact, est, relErr)
		}
		if est < exact {
			// Fig. 6: the estimate slightly exceeds the measurement.
			continue
		}
	}
}

func TestEstimateOvershootsAtHighParallelism(t *testing.T) {
	// Fig. 6: at very large RLP (128 × TLP 8 = 1024) the estimated AI is
	// visibly larger than the measured value.
	h := GPT3_66B().Hidden
	exact := ExactFCAI(128*8, h)
	est := EstimatedAI(128, 8)
	if est <= exact {
		t.Fatalf("estimate %v should exceed exact %v at high parallelism", est, exact)
	}
	if (est-exact)/est < 0.05 {
		t.Fatalf("overshoot should be noticeable at n=1024, got exact=%v est=%v", exact, est)
	}
}

func TestPrefillWork(t *testing.T) {
	c := LLaMA65B()
	k := c.PrefillWork([]int{128, 128})
	// FC part: 256 tokens × per-layer weights × layers (1 FLOP/B).
	fcFlops := 256 * float64(c.FCWeightBytesPerLayer()) * float64(c.Layers)
	if float64(k.Flops) <= fcFlops {
		t.Fatalf("prefill flops %v should exceed FC-only %v (attention term)", k.Flops, fcFlops)
	}
	if k.WeightBytes != units.Bytes(float64(c.FCWeightBytesPerLayer())*float64(c.Layers)) {
		t.Fatalf("prefill weights = %v", k.WeightBytes)
	}
	empty := c.PrefillWork(nil)
	if empty.Flops != 0 {
		t.Fatalf("empty prefill flops = %v", empty.Flops)
	}
}

func TestKernelKindString(t *testing.T) {
	if KindQKV.String() != "qkv" || KindAttention.String() != "attention" ||
		KindProjection.String() != "projection" || KindFFN.String() != "ffn" {
		t.Fatal("kernel kind names wrong")
	}
	if KernelKind(9).String() != "KernelKind(9)" {
		t.Fatal("unknown kind formatting wrong")
	}
	if KindAttention.IsFC() || !KindQKV.IsFC() || !KindFFN.IsFC() || !KindProjection.IsFC() {
		t.Fatal("IsFC classification wrong")
	}
}

// Property: Eq. (1) is monotone increasing in n and bounded above by the
// Eq. (2) estimate (weights always add bytes beyond the activations).
func TestExactAIProperty(t *testing.T) {
	f := func(nRaw uint8, hSel uint8) bool {
		n := int(nRaw)%256 + 1
		hs := []int{4096, 7168, 8192, 9216, 12288}
		h := hs[int(hSel)%len(hs)]
		exact := ExactFCAI(n, h)
		if exact <= 0 || exact > float64(n) {
			return false
		}
		return ExactFCAI(n+1, h) > exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: kernel FLOPs and bytes scale linearly with token count for FC
// kernels.
func TestFCKernelLinearity(t *testing.T) {
	c := GPT3_66B()
	f := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		k1 := c.FFNKernel(n)
		k2 := c.FFNKernel(2 * n)
		return math.Abs(float64(k2.Flops)-2*float64(k1.Flops)) < 1 &&
			k1.WeightBytes == k2.WeightBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
