package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixtralLikeShape(t *testing.T) {
	m := Mixtral8x7BLike()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mixtral 8x7B has ~47B parameters.
	b := float64(m.Params()) / 1e9
	if math.Abs(b-47)/47 > 0.05 {
		t.Fatalf("params = %.1fB, want ≈47B", b)
	}
}

func TestMoEValidate(t *testing.T) {
	m := Mixtral8x7BLike()
	m.Experts = 1
	if err := m.Validate(); err == nil {
		t.Error("1 expert should fail")
	}
	m = Mixtral8x7BLike()
	m.TopK = 9
	if err := m.Validate(); err == nil {
		t.Error("top-k > experts should fail")
	}
	m = Mixtral8x7BLike()
	m.Base.Hidden = 0
	if err := m.Validate(); err == nil {
		t.Error("invalid base should fail")
	}
}

func TestActiveExperts(t *testing.T) {
	m := Mixtral8x7BLike() // 8 experts, top-2
	// One token activates exactly TopK experts in expectation.
	if got := m.ActiveExperts(1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("ActiveExperts(1) = %v, want 2", got)
	}
	// Many tokens saturate all experts.
	if got := m.ActiveExperts(1000); math.Abs(got-8) > 1e-6 {
		t.Fatalf("ActiveExperts(1000) = %v, want ≈8", got)
	}
	// Monotone.
	prev := 0.0
	for n := 1; n <= 64; n *= 2 {
		got := m.ActiveExperts(n)
		if got <= prev {
			t.Fatalf("ActiveExperts not increasing at n=%d", n)
		}
		prev = got
	}
}

func TestMoELowerReuseThanDense(t *testing.T) {
	// §6.5's premise: expert sparsity lowers the FC kernel's arithmetic
	// intensity versus a dense model with the same active compute, keeping
	// it in FC-PIM-favourable territory at batch sizes where dense FC has
	// already turned compute-bound.
	m := Mixtral8x7BLike()
	dense := m.DenseEquivalent()
	for _, n := range []int{8, 16, 32, 64} {
		moeK := m.FCIterationKernel(n)
		denseK := dense.FCIterationKernel(n)
		moeAI := float64(moeK.Flops) / float64(moeK.WeightBytes)
		denseAI := float64(denseK.Flops) / float64(denseK.WeightBytes)
		if moeAI >= denseAI {
			t.Errorf("n=%d: MoE AI %.1f should be below dense-equivalent %.1f", n, moeAI, denseAI)
		}
		// Active compute matches the dense equivalent.
		if r := float64(moeK.Flops) / float64(denseK.Flops); math.Abs(r-1) > 0.01 {
			t.Errorf("n=%d: MoE flops should match dense-equivalent (ratio %.3f)", n, r)
		}
	}
}

func TestMoESingleTokenStreamsOnlyTopK(t *testing.T) {
	m := Mixtral8x7BLike()
	k := m.FCIterationKernel(1)
	layers := float64(m.Base.Layers)
	wantExpert := 2 * m.expertFFNBytes() * layers
	wantDense := m.attnFCBytes() * layers
	if math.Abs(float64(k.WeightBytes)-(wantExpert+wantDense)) > 1 {
		t.Fatalf("single-token streamed bytes = %v, want dense + 2 experts", k.WeightBytes)
	}
}

// Property: streamed expert bytes never exceed the full expert pool, and
// reuse (flops/bytes) is monotone in n.
func TestMoEKernelProperty(t *testing.T) {
	m := Mixtral8x7BLike()
	maxBytes := float64(m.WeightBytes())
	f := func(nRaw uint8) bool {
		n := int(nRaw)%256 + 1
		k := m.FCIterationKernel(n)
		if float64(k.WeightBytes) > maxBytes {
			return false
		}
		k2 := m.FCIterationKernel(n + 1)
		ai1 := float64(k.Flops) / float64(k.WeightBytes)
		ai2 := float64(k2.Flops) / float64(k2.WeightBytes)
		return ai2 > ai1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
