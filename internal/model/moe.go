package model

import (
	"fmt"
	"math"

	"github.com/papi-sim/papi/internal/units"
)

// MoE models a Mixture-of-Experts transformer (§6.5): the FFN of every layer
// is replaced by Experts sparsely-activated expert FFNs, of which each token
// routes through TopK. Expert sparsity lowers the FC kernel's effective data
// reuse — each expert's weights serve only the tokens routed to it — which
// is exactly the regime the paper argues FC-PIM exploits well (expert weight
// slices live in-bank; idle FPUs are minimised; data movement avoided).
type MoE struct {
	Base    Config
	Experts int
	TopK    int
}

// Mixtral8x7BLike returns a Mixtral-8x7B-class MoE configuration.
func Mixtral8x7BLike() MoE {
	return MoE{
		Base: Config{Name: "Mixtral-8x7B-like", Hidden: 4096, Layers: 32, Heads: 32,
			FFNDim: 14336, FFNMatrices: 3, VocabSize: 32000, MaxSeqLen: 4096},
		Experts: 8,
		TopK:    2,
	}
}

// Validate checks the MoE structure.
func (m MoE) Validate() error {
	if err := m.Base.Validate(); err != nil {
		return err
	}
	if m.Experts < 2 {
		return fmt.Errorf("model: MoE needs ≥ 2 experts, got %d", m.Experts)
	}
	if m.TopK < 1 || m.TopK > m.Experts {
		return fmt.Errorf("model: MoE top-k %d outside [1,%d]", m.TopK, m.Experts)
	}
	return nil
}

// expertFFNBytes is one expert's FFN weight footprint per layer.
func (m MoE) expertFFNBytes() float64 {
	return float64(m.Base.FFNMatrices) * float64(m.Base.Hidden) * float64(m.Base.FFNDim) * BytesPerElement
}

// attnFCBytes is the dense (non-expert) FC weight footprint per layer:
// QKV generation plus projection.
func (m MoE) attnFCBytes() float64 {
	h := float64(m.Base.Hidden)
	return 4 * h * h * BytesPerElement
}

// WeightBytes returns the full model footprint: all experts are resident.
func (m MoE) WeightBytes() units.Bytes {
	perLayer := m.attnFCBytes() + float64(m.Experts)*m.expertFFNBytes()
	embed := float64(m.Base.VocabSize) * float64(m.Base.Hidden) * BytesPerElement
	return units.Bytes(float64(m.Base.Layers)*perLayer + embed)
}

// Params returns the total parameter count.
func (m MoE) Params() int64 {
	return int64(float64(m.WeightBytes()) / BytesPerElement)
}

// ActiveExperts returns the expected number of distinct experts activated per
// layer when n tokens each route to TopK of Experts uniformly:
// E·(1 − (1 − k/E)ⁿ). This drives how much expert weight data is streamed.
func (m MoE) ActiveExperts(n int) float64 {
	e, k := float64(m.Experts), float64(m.TopK)
	return e * (1 - math.Pow(1-k/e, float64(n)))
}

// FCIterationKernel aggregates one decoding iteration's FC work (all layers)
// with n tokens in flight. Unlike the dense case, FLOPs and streamed bytes
// diverge: each token computes through TopK experts, but only the activated
// experts' weights are streamed — so the kernel's data-reuse level is
// n·TopK/ActiveExperts per expert rather than n.
func (m MoE) FCIterationKernel(n int) Kernel {
	layers := float64(m.Base.Layers)
	nf := float64(n)
	active := m.ActiveExperts(n)

	denseBytes := m.attnFCBytes() * layers
	expertBytesStreamed := active * m.expertFFNBytes() * layers
	flops := nf*denseBytes + nf*float64(m.TopK)*m.expertFFNBytes()*layers

	h := float64(m.Base.Hidden)
	return Kernel{
		Kind:            KindFFN,
		Flops:           units.FLOPs(flops),
		WeightBytes:     units.Bytes(denseBytes + expertBytesStreamed),
		ActivationBytes: units.Bytes(nf * 2 * h * BytesPerElement * layers),
	}
}

// DenseEquivalent returns a dense model with the same *active* compute per
// token, for comparing MoE's memory behaviour against a dense baseline.
func (m MoE) DenseEquivalent() Config {
	c := m.Base
	c.Name = m.Base.Name + " (dense-equivalent)"
	c.FFNDim = m.Base.FFNDim * m.TopK
	return c
}
