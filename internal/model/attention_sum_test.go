package model

import (
	"math/rand"
	"testing"
)

// TestAttentionKernelSumMatchesAttentionKernel pins the incremental
// closed form bit-identical to the per-request summation: every term is an
// integer-valued float far below 2⁵³, so the sum over KV lengths must equal
// the closed form over their total exactly, for every evaluation model.
func TestAttentionKernelSumMatchesAttentionKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range append(All(), OPT125M(), LLaMA7B()) {
		for _, tlp := range []int{1, 2, 4, 8} {
			for trial := 0; trial < 50; trial++ {
				rlp := 1 + rng.Intn(64)
				kvLens := make([]int, rlp)
				sum := 0
				for i := range kvLens {
					kvLens[i] = 1 + rng.Intn(cfg.MaxSeqLen)
					sum += kvLens[i]
				}
				want := cfg.AttentionKernel(tlp, kvLens)
				got := cfg.AttentionKernelSum(tlp, sum, rlp)
				if got != want {
					t.Fatalf("%s tlp=%d rlp=%d ΣkvLen=%d: sum form %+v != per-request form %+v",
						cfg.Name, tlp, rlp, sum, got, want)
				}
			}
		}
	}
}
