package papi

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// docs/SCENARIOS.md documents each registered scenario under a "## `name`"
// heading. The doc and the registry must not drift: every documented name
// must resolve, and every registered scenario must be documented.
func TestScenarioDocsMatchRegistry(t *testing.T) {
	data, err := os.ReadFile("docs/SCENARIOS.md")
	if err != nil {
		t.Fatalf("reading scenario docs: %v", err)
	}
	doc := string(data)

	heading := regexp.MustCompile("(?m)^## `([^`]+)`$")
	documented := map[string]bool{}
	for _, m := range heading.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/SCENARIOS.md documents no scenarios (no \"## `name`\" headings)")
	}

	registered := map[string]bool{}
	for _, name := range ScenarioNames() {
		registered[name] = true
	}

	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/SCENARIOS.md documents %q, which is not in the scenario registry", name)
		}
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("scenario %q is registered but undocumented in docs/SCENARIOS.md", name)
		}
		// Each scenario's doc section must include a runnable command.
		if !strings.Contains(doc, "-scenario "+name) {
			t.Errorf("docs/SCENARIOS.md has no runnable papiserve command for %q", name)
		}
	}
}

// docs/ARCHITECTURE.md is the layer-map entry point; keep it present and
// linked from the README alongside the scenario doc.
func TestArchitectureDocsLinked(t *testing.T) {
	if _, err := os.Stat("docs/ARCHITECTURE.md"); err != nil {
		t.Fatalf("docs/ARCHITECTURE.md missing: %v", err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/SCENARIOS.md"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not link %s", want)
		}
	}
}
