package papi

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/experiments"
)

// docs/SCENARIOS.md documents each registered scenario under a "## `name`"
// heading. The doc and the registry must not drift: every documented name
// must resolve, and every registered scenario must be documented.
func TestScenarioDocsMatchRegistry(t *testing.T) {
	data, err := os.ReadFile("docs/SCENARIOS.md")
	if err != nil {
		t.Fatalf("reading scenario docs: %v", err)
	}
	doc := string(data)

	heading := regexp.MustCompile("(?m)^## `([^`]+)`$")
	documented := map[string]bool{}
	for _, m := range heading.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/SCENARIOS.md documents no scenarios (no \"## `name`\" headings)")
	}

	registered := map[string]bool{}
	for _, name := range ScenarioNames() {
		registered[name] = true
	}

	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/SCENARIOS.md documents %q, which is not in the scenario registry", name)
		}
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("scenario %q is registered but undocumented in docs/SCENARIOS.md", name)
		}
		// Each scenario's doc section must include a runnable command.
		if !strings.Contains(doc, "-scenario "+name) {
			t.Errorf("docs/SCENARIOS.md has no runnable papiserve command for %q", name)
		}
	}
}

// docs/DESIGNS.md documents each registered hardware design under a
// "## `name`" heading. The doc and the design registry must not drift:
// every documented name must resolve, every registered design must be
// documented, and each section must include a runnable -design command.
func TestDesignDocsMatchRegistry(t *testing.T) {
	data, err := os.ReadFile("docs/DESIGNS.md")
	if err != nil {
		t.Fatalf("reading design docs: %v", err)
	}
	doc := string(data)

	heading := regexp.MustCompile("(?m)^## `([^`]+)`$")
	documented := map[string]bool{}
	for _, m := range heading.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/DESIGNS.md documents no designs (no \"## `name`\" headings)")
	}

	registered := map[string]bool{}
	for _, name := range DesignNames() {
		registered[name] = true
	}

	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/DESIGNS.md documents %q, which is not in the design registry", name)
		}
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("design %q is registered but undocumented in docs/DESIGNS.md", name)
		}
		// Each design's doc section must include a runnable command (quoted
		// when the name has spaces).
		if !strings.Contains(doc, "-design "+name) && !strings.Contains(doc, `-design "`+name+`"`) {
			t.Errorf("docs/DESIGNS.md has no runnable -design command for %q", name)
		}
	}
}

// docs/ARCHITECTURE.md and docs/TESTING.md are the entry points; keep them
// present and linked from the README (and TESTING from ARCHITECTURE).
func TestDocsPresentAndLinked(t *testing.T) {
	for _, doc := range []string{"docs/ARCHITECTURE.md", "docs/DESIGNS.md", "docs/SCENARIOS.md", "docs/PERFORMANCE.md", "docs/KVCACHE.md", "docs/RESILIENCE.md", "docs/SCALE.md", "docs/TESTING.md", "docs/ANALYSIS.md"} {
		if _, err := os.Stat(doc); err != nil {
			t.Fatalf("%s missing: %v", doc, err)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/DESIGNS.md", "docs/SCENARIOS.md", "docs/PERFORMANCE.md", "docs/KVCACHE.md", "docs/RESILIENCE.md", "docs/SCALE.md", "docs/TESTING.md", "docs/ANALYSIS.md"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not link %s", want)
		}
	}
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(arch), "TESTING.md") {
		t.Error("docs/ARCHITECTURE.md does not link docs/TESTING.md")
	}
	if !strings.Contains(string(arch), "RESILIENCE.md") {
		t.Error("docs/ARCHITECTURE.md does not link docs/RESILIENCE.md")
	}
	if !strings.Contains(string(arch), "SCALE.md") {
		t.Error("docs/ARCHITECTURE.md does not link docs/SCALE.md")
	}
	testingDoc, err := os.ReadFile("docs/TESTING.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(testingDoc), "ANALYSIS.md") {
		t.Error("docs/TESTING.md does not link docs/ANALYSIS.md")
	}
	if !strings.Contains(string(testingDoc), "RESILIENCE.md") {
		t.Error("docs/TESTING.md does not link docs/RESILIENCE.md")
	}
	if !strings.Contains(string(testingDoc), "SCALE.md") {
		t.Error("docs/TESTING.md does not link docs/SCALE.md")
	}
}

// commandDocs are the documents whose quoted papibench/papiserve commands
// are validated against the real flag sets and registries: a doc quoting a
// figure, scenario, or flag that no longer exists must fail the suite.
var commandDocs = []string{
	"README.md",
	"docs/ARCHITECTURE.md",
	"docs/DESIGNS.md",
	"docs/SCENARIOS.md",
	"docs/PERFORMANCE.md",
	"docs/KVCACHE.md",
	"docs/RESILIENCE.md",
	"docs/SCALE.md",
	"docs/TESTING.md",
	"docs/ANALYSIS.md",
}

// Known flags per command, mirroring the flag definitions in
// cmd/papiserve/main.go and cmd/papibench/main.go. Adding a flag to a
// command means adding it here; removing one fails this test for every doc
// still quoting it — which is the point.
var commandFlags = map[string]map[string]bool{
	"papiserve": set("design", "list-designs", "model", "dataset", "replicas",
		"router", "rate", "requests", "maxbatch", "spec", "seed", "slo",
		"target", "sweep", "scenario", "trace", "save-trace", "autoscale",
		"classes", "kv-blocks", "kv-cold", "faults", "retries", "timeout",
		"shards", "checkpoint", "retain-requests", "cpuprofile", "memprofile"),
	"papibench": set("figure", "design", "list-designs", "fastpath",
		"cpuprofile", "memprofile", "faults"),
	"papivet": set("waivers"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// TestDocCommandsResolve tokenizes every same-line papiserve/papibench
// invocation quoted in the docs and validates each `-flag` against the
// command's flag set, each `-figure` value against the experiments figure
// registry, each `-scenario` value against the workload scenario registry,
// and each `-design` value against the design registry (comma-separated
// lists per entry; spec-file paths are skipped). Placeholder values
// (`<name>`, globs) are skipped; `a|b`-alternative values are validated per
// alternative.
func TestDocCommandsResolve(t *testing.T) {
	figures := map[string]bool{}
	for _, id := range experiments.FigureIDs() {
		figures[id] = true
	}
	scenarios := map[string]bool{}
	for _, name := range ScenarioNames() {
		scenarios[name] = true
	}
	designs := map[string]bool{}
	for _, name := range DesignNames() {
		designs[name] = true
	}

	clean := func(tok string) string {
		return strings.Trim(tok, "`(),.;:\"'")
	}
	plain := regexp.MustCompile(`^[a-z0-9-]+$`)
	// Design names carry spaces ("PIM-only PAPI"), so a leading-quoted value
	// is rejoined across tokens before validating; file paths and comma
	// lists are handled per docs/DESIGNS.md semantics.
	checkDesign := func(t *testing.T, doc, cmd, raw string, rest []string) {
		val := raw
		if strings.HasPrefix(val, `"`) && strings.Count(val, `"`) == 1 {
			for _, tok := range rest {
				val += " " + tok
				if strings.Contains(tok, `"`) {
					break
				}
			}
		}
		val = strings.Trim(val, "`(),.;:\"'")
		if val == "" || strings.ContainsAny(val, "<>*$") {
			return // placeholder or glob: nothing concrete to resolve
		}
		for _, part := range strings.Split(val, ",") {
			part = strings.TrimSpace(part)
			if part == "" || strings.HasSuffix(part, ".json") || strings.Contains(part, "/") {
				continue // spec-file path: not a registry name
			}
			if !designs[part] {
				t.Errorf("%s quotes `%s -design %s`, but %q is not a registered design", doc, cmd, raw, part)
			}
		}
	}
	checkValue := func(t *testing.T, doc, cmd, flag, raw string, known map[string]bool) {
		val := clean(raw)
		if val == "" || strings.ContainsAny(val, "<>*$") {
			return // placeholder or glob: nothing concrete to resolve
		}
		for _, alt := range strings.Split(val, "|") {
			if !plain.MatchString(alt) {
				continue
			}
			if !known[alt] {
				t.Errorf("%s quotes `%s -%s %s`, but %q does not resolve", doc, cmd, flag, raw, alt)
			}
		}
	}

	for _, doc := range commandDocs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			for cmd, flags := range commandFlags {
				idx := strings.Index(line, cmd)
				if idx < 0 {
					continue
				}
				toks := strings.Fields(line[idx+len(cmd):])
				for i, raw := range toks {
					// A flag ending in prose punctuation ("a named
					// `-scenario`, or …") or wrapped in backticks
					// ("`-design` takes …") is a mention, not an invocation:
					// validate the flag but not a following "value".
					mention := strings.HasSuffix(raw, ",") || strings.HasSuffix(raw, ";") ||
						strings.HasPrefix(raw, "`")
					tok := clean(raw)
					if !strings.HasPrefix(tok, "-") || len(tok) < 2 {
						continue
					}
					name, _, _ := strings.Cut(strings.TrimLeft(tok, "-"), "=")
					if name == "" || !plain.MatchString(name) {
						continue
					}
					if !flags[name] {
						t.Errorf("%s quotes `%s -%s`, which is not a %s flag", doc, cmd, name, cmd)
						continue
					}
					if i+1 < len(toks) && !mention {
						switch name {
						case "figure":
							checkValue(t, doc, cmd, name, toks[i+1], figures)
						case "scenario":
							checkValue(t, doc, cmd, name, toks[i+1], scenarios)
						case "design":
							checkDesign(t, doc, cmd, toks[i+1], toks[i+2:])
						}
					}
				}
			}
		}
	}
}
