// Elastic SLO-driven serving: the fleet follows the load instead of being
// provisioned for the worst second of the day. The example first runs the
// tiered-diurnal scenario — a sinusoidal day curve carrying a 65/35 mix of
// interactive qa and preemptible batch creative work — through a statically
// peak-provisioned fleet and through an autoscaled one, comparing the SLO
// outcome of the interactive tier against the replica-seconds and J/token
// each policy spent. It then prints the autoscaler's decision timeline, and
// closes with a KV-pressure vignette: batch long-context requests filling
// the attention pool are preempted (evicted and requeued with a re-prefill
// cost) so interactive arrivals are admitted instead of rejected.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	cfg := papi.LLaMA65B()
	slo := papi.SLO{TokenLatency: papi.Seconds(0.012)}

	sc, err := papi.ScenarioByName("tiered-diurnal")
	if err != nil {
		log.Fatal(err)
	}
	stream, err := sc.Requests(240, 42)
	if err != nil {
		log.Fatal(err)
	}

	// --- Static peak provisioning vs the elastic fleet, identical traffic.
	static := runFleet(cfg, stream, 4, nil)
	auto := runFleet(cfg, stream, 2, &papi.AutoscaleOptions{
		Min: 1, Max: 4,
		Interval: 0.25, WarmUp: 1, CoolDown: 0.25,
		SLO:          slo,
		UpTPOTFactor: 0.75, UpQueue: 8, DownQueue: 2, UpArrivalRate: 5,
	})

	fmt.Println("policy      | peak | replica·s | J/token | int TPOT p99 | int SLO attain")
	fmt.Println("------------+------+-----------+---------+--------------+---------------")
	for _, row := range []struct {
		name string
		f    *papi.FleetResult
	}{{"static-4", static}, {"autoscaled", auto}} {
		f := row.f
		fmt.Printf("%-11s | %4d | %9.2f | %7.1f | %12v | %13.1f%%\n",
			row.name, f.PeakReplicas, float64(f.ReplicaSeconds), f.JoulesPerToken(),
			papi.Seconds(f.InteractiveTPOT.P99),
			100*f.AttainmentClass(slo, papi.ClassInteractive))
	}
	fmt.Printf("\nelasticity: %.1f%% fewer replica-seconds than static peak provisioning\n\n",
		100*(1-float64(auto.ReplicaSeconds)/float64(static.ReplicaSeconds)))

	// --- The controller's decision timeline.
	fmt.Println("autoscaler timeline (signals at each decision):")
	for _, ev := range auto.ScaleEvents {
		switch ev.Action {
		case papi.ScaleUp, papi.ScaleDrain:
			fmt.Printf("  %8v  %-9s replica %d  (queue/replica %.1f, p95 TPOT %v, %.2f arrivals/s/replica)\n",
				ev.At, ev.Action, ev.Replica, ev.QueuePerReplica, ev.TPOTP95, ev.ArrivalRate)
		default:
			fmt.Printf("  %8v  %-9s replica %d\n", ev.At, ev.Action, ev.Replica)
		}
	}

	// --- Priority admission and preemption under KV pressure: GPT-3 175B
	// long-context traffic, where ~50 grown requests fill the attention
	// pool. Batch work saturates the pool first; interactive arrivals then
	// preempt it instead of queueing behind it.
	fmt.Println("\nKV-pressure preemption (GPT-3 175B, long-context):")
	eng, err := papi.NewEngine(papi.NewPAPI(), papi.GPT3_175B(), papi.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	var reqs []papi.Request
	for i := 0; i < 80; i++ {
		reqs = append(reqs, papi.Request{ID: i, InputLen: 2048, OutputLen: 1024,
			Class: papi.ClassBatch})
	}
	for i := 0; i < 24; i++ {
		reqs = append(reqs, papi.Request{ID: 80 + i, InputLen: 2048, OutputLen: 256,
			Arrival: papi.Seconds(0.5 + 0.25*float64(i)), Class: papi.ClassInteractive})
	}
	res, err := eng.RunContinuous(reqs, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d preemptions over %d requests, %d tokens\n",
		res.Preemptions, len(reqs), res.Tokens)
	var intSum, batSum papi.Seconds
	intN, batN, preempted := 0, 0, 0
	for _, rm := range res.Requests {
		if rm.Preemptions > 0 {
			preempted++
		}
		switch rm.Class {
		case papi.ClassInteractive:
			intSum += rm.TPOT
			intN++
		case papi.ClassBatch:
			batSum += rm.TPOT
			batN++
		}
	}
	fmt.Printf("  %d distinct batch requests were evicted and re-prefilled\n", preempted)
	fmt.Printf("  mean TPOT — interactive: %v · batch: %v (the tier that pays for the pool)\n",
		intSum/papi.Seconds(intN), batSum/papi.Seconds(batN))
}

func runFleet(cfg papi.Model, stream []papi.Request, replicas int, auto *papi.AutoscaleOptions) *papi.FleetResult {
	c, err := papi.NewCluster(papi.NewPAPI, cfg, papi.ClusterOptions{
		Replicas:  replicas,
		MaxBatch:  16,
		Router:    papi.LeastOutstanding(),
		Serving:   papi.DefaultOptions(1),
		Autoscale: auto,
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := c.Run(stream)
	if err != nil {
		log.Fatal(err)
	}
	return f
}
