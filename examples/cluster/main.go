// Fleet-level serving: the scenario one engine cannot answer. A service
// receives a Poisson stream of general-qa requests at a rate no single
// replica can absorb, so four PAPI replicas share it behind a router. The
// example runs the identical stream through all three routing policies and
// compares fleet throughput, tail latency, and SLO attainment — showing
// that at fleet scale the routing decision, not just each replica's
// FC-placement scheduler, sets the serving capacity.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	cfg := papi.LLaMA65B()
	stream := papi.GeneralQA().Poisson(128, 60, 21) // 128 requests at 60 req/s
	slo := papi.SLO{TokenLatency: papi.Seconds(0.012)}

	fmt.Println("router            | makespan  | tok/s | TTFT p99   | TPOT p99  | SLO met")
	fmt.Println("------------------+-----------+-------+------------+-----------+--------")
	for _, router := range []papi.Router{papi.RoundRobin(), papi.LeastOutstanding(), papi.KVHeadroom()} {
		c, err := papi.NewCluster(papi.NewPAPI, cfg, papi.ClusterOptions{
			Replicas: 4,
			MaxBatch: 16,
			Router:   router,
			Serving:  papi.DefaultOptions(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		f, err := c.Run(stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s | %9v | %5.0f | %10v | %9v | %5.1f%%\n",
			router.Name(), f.Makespan, f.TokensPerSecond(),
			papi.Seconds(f.TTFT.P99), papi.Seconds(f.TPOT.P99),
			100*f.Attainment(slo))
	}

	fmt.Println()
	fmt.Println("Every replica is a full PAPI system: its scheduler still moves FC")
	fmt.Println("between the GPU and FC-PIM as its local RLP decays, while the router")
	fmt.Println("decides which replica's RLP grows in the first place.")
}
