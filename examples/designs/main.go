// The designs example walks the declarative hardware design layer: the
// named registry, a custom design expressed as a spec (and round-tripped
// through its JSON encoding, exactly what a -design file.json does), and a
// mixed-design fleet whose metrics split per design.
package main

import (
	"fmt"
	"log"

	papi "github.com/papi-sim/papi"
)

func main() {
	// 1. The registry: the five evaluated systems as declarative specs.
	fmt.Println("== design registry ==")
	for _, spec := range papi.DesignSpecs() {
		sys, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s weights %v · KV %v · policy %s\n",
			spec.Name, sys.WeightCapacity(), sys.KVCapacity(), sys.Policy.Name())
	}

	// 2. A custom design: PAPI with a lower scheduling threshold and a
	// wider attention fabric, expressed purely as data. Export → import is
	// byte-stable, so the spec can live in a file and ship between runs.
	custom, err := papi.DesignByName("PAPI")
	if err != nil {
		log.Fatal(err)
	}
	custom.Name = "PAPI-wide"
	custom.Description = "PAPI with α=16 and a 64 GB/s attention fabric"
	custom.Policy = papi.PolicySpec{Kind: "dynamic", Alpha: 16}
	wide := papi.CXL2Link()
	wide.Name, wide.GBps = "cxl-64", 64
	custom.AttnLink = wide

	data, err := custom.Export()
	if err != nil {
		log.Fatal(err)
	}
	imported, err := papi.ImportDesignSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== custom design (%d bytes of JSON) ==\n", len(data))

	cfg := papi.LLaMA65B()
	reqs := papi.GeneralQA().Generate(16, 1)
	for _, spec := range []papi.DesignSpec{mustSpec(papi.DesignByName("PAPI")), imported} {
		sys, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		eng, err := papi.NewEngine(sys, cfg, papi.DefaultOptions(1))
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.RunBatch(reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s batch of %d: %v total, %v energy\n",
			spec.Name, len(reqs), res.TotalTime(), res.Energy.Total())
	}

	// 3. A mixed fleet: PAPI replicas alongside the strongest baseline,
	// replicas provisioned toward the spec list's design ratio. The fleet
	// result splits its metrics per design — the comparison a heterogeneous
	// fleet exists for.
	fmt.Println("\n== mixed-design fleet ==")
	specs := []papi.DesignSpec{
		mustSpec(papi.DesignByName("PAPI")),
		mustSpec(papi.DesignByName("A100+AttAcc")),
	}
	c, err := papi.NewClusterFromSpecs(specs, cfg, papi.ClusterOptions{
		Replicas: 4,
		MaxBatch: 16,
		Router:   papi.LeastOutstanding(),
		Serving:  papi.DefaultOptions(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := c.Run(papi.GeneralQA().Poisson(48, 30, 42))
	if err != nil {
		log.Fatal(err)
	}
	slo := papi.SLO{TokenLatency: papi.Seconds(0.012)}
	fmt.Printf("fleet %s: %d tokens in %v\n", f.System, f.Tokens, f.Makespan)
	for _, d := range f.PerDesign {
		fmt.Printf("%-14s %d replicas · %d requests · TPOT p95 %v · attainment %.0f%%\n",
			d.Design, d.Replicas, d.Requests, papi.Seconds(d.TPOT.P95), 100*d.Attainment(slo))
	}
}

func mustSpec(spec papi.DesignSpec, err error) papi.DesignSpec {
	if err != nil {
		log.Fatal(err)
	}
	return spec
}
