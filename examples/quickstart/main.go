// Quickstart: build the PAPI system, decode one batch of LLaMA-65B requests
// with speculative decoding, and print latency, energy and the scheduler's
// activity — the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	sys := papi.NewPAPI()
	eng, err := papi.NewEngine(sys, papi.LLaMA65B(), papi.DefaultOptions(4))
	if err != nil {
		log.Fatal(err)
	}

	batch := papi.CreativeWriting().Generate(16, 1)
	res, err := eng.RunBatch(batch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system: %s, model: %s\n", res.System, res.Model)
	fmt.Printf("generated %d tokens in %v (%v per token)\n",
		res.Tokens, res.TotalTime(), res.TimePerToken())
	fmt.Printf("prefill %v, decode %v over %d iterations\n",
		res.PrefillTime, res.DecodeTime, res.Iterations)
	fmt.Printf("decode breakdown: FC %v, attention %v, communication %v, other %v\n",
		res.Breakdown.FC, res.Breakdown.Attention, res.Breakdown.Communication, res.Breakdown.Other)
	fmt.Printf("energy: %v\n", res.Energy.Total())
	fmt.Printf("the scheduler moved FC between the PUs and FC-PIM %d times as RLP decayed\n",
		res.Reschedules)
}
