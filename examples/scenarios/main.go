// Command scenarios walks through the workload scenario engine: the named
// scenario registry, trace export/replay, and a closed-loop multi-turn run
// whose realised arrivals replay against a different design.
//
//	go run ./examples/scenarios
//
// The walkthrough:
//
//  1. lists every registered scenario and its arrival process;
//  2. runs the bursty creative-writing scenario on a 2-replica PAPI fleet;
//  3. exports the realised arrival stream as a byte-stable JSON trace,
//     re-imports it, and replays the identical traffic on the GPU-less
//     PIM-only PAPI design — an apples-to-apples comparison no regenerated
//     stream can guarantee;
//  4. runs the closed-loop chat scenario, where each follow-up arrives
//     think-time after the previous answer completes and carries the grown
//     conversation context back to the same replica.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	fmt.Println("== registered scenarios ==")
	for _, sc := range papi.Scenarios() {
		mode := "open-loop"
		if sc.ClosedLoop() {
			mode = "closed-loop"
		}
		fmt.Printf("  %-15s %-11s arrivals %-28s %s\n",
			sc.Name, mode, sc.NewArrivals().Name(), sc.Description)
	}

	// 2. A bursty scenario on the full PAPI fleet.
	burst, err := papi.ScenarioByName("burst-creative")
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := burst.Requests(48, 42)
	if err != nil {
		log.Fatal(err)
	}
	fleet := func(design string) *papi.FleetResult {
		c, err := papi.NewClusterByName(design, papi.LLaMA65B(), papi.ClusterOptions{
			Replicas: 2,
			MaxBatch: 16,
			Router:   papi.LeastOutstanding(),
			Serving:  papi.DefaultOptions(1),
			// The realised stream feeds the trace export below.
			RetainStream: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		f, err := c.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	fmt.Println("\n== burst-creative on PAPI ==")
	f := fleet("PAPI")
	fmt.Printf("%.0f tok/s · TTFT p99 %v · TPOT p99 %v\n",
		f.TokensPerSecond(), papi.Seconds(f.TTFT.P99), papi.Seconds(f.TPOT.P99))

	// 3. Export the realised stream, re-import, replay on PIM-only PAPI.
	trace := papi.NewTrace("burst-demo", burst.Name, 42, f.Stream)
	data, err := trace.Export()
	if err != nil {
		log.Fatal(err)
	}
	back, err := papi.ImportTrace(data)
	if err != nil {
		log.Fatal(err)
	}
	reqs = back.Workload()
	fmt.Printf("\n== identical %d-request trace (%d bytes JSON) replayed on PIM-only PAPI ==\n",
		len(back.Requests), len(data))
	g := fleet("PIM-only PAPI")
	fmt.Printf("%.0f tok/s · TTFT p99 %v · TPOT p99 %v\n",
		g.TokensPerSecond(), papi.Seconds(g.TTFT.P99), papi.Seconds(g.TPOT.P99))

	// 4. Closed-loop multi-turn chat: follow-ups arrive after completions.
	chat, err := papi.ScenarioByName("chat-multiturn")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := chat.Plan(24, 42)
	if err != nil {
		log.Fatal(err)
	}
	turns := 0
	for _, conv := range plan {
		turns += len(conv.Turns)
	}
	c, err := papi.NewCluster(papi.NewPAPI, papi.LLaMA65B(), papi.ClusterOptions{
		Replicas:     2,
		MaxBatch:     16,
		Router:       papi.LeastOutstanding(),
		Serving:      papi.DefaultOptions(1),
		RetainStream: true, // inspect the realised multi-turn arrivals
	})
	if err != nil {
		log.Fatal(err)
	}
	h, err := c.RunPlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== chat-multiturn: %d conversations → %d turns on PAPI ==\n", len(plan), turns)
	fmt.Printf("%.0f tok/s · TTFT p50/p99 %v / %v · attainment (12 ms TPOT) %.0f%%\n",
		h.TokensPerSecond(), papi.Seconds(h.TTFT.P50), papi.Seconds(h.TTFT.P99),
		100*h.Attainment(papi.SLO{TokenLatency: papi.Seconds(0.012)}))
	first, last := h.Stream[0], h.Stream[len(h.Stream)-1]
	fmt.Printf("context growth: first request %d prompt tokens, last %d — follow-ups carry the conversation\n",
		first.InputLen, last.InputLen)
}
