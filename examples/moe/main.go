// Mixture-of-Experts on FC-PIM: the §6.5 extension. Expert sparsity lowers
// the FC kernel's effective data reuse — each expert's weights serve only the
// tokens routed to it — so MoE FC stays memory-bound (and FC-PIM-favourable)
// at batch sizes where dense FC has long turned compute-bound on the GPU.
//
// The example compares a Mixtral-8x7B-class MoE against its dense-equivalent
// (same active FLOPs per token) across batch sizes, showing the crossover
// point moving right for the MoE.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	sys := papi.NewPAPI()
	moe := papi.Mixtral8x7BLike()
	dense := moe.DenseEquivalent()

	fmt.Printf("%s: %d experts, top-%d, %.0fB parameters total\n",
		moe.Base.Name, moe.Experts, moe.TopK, float64(moe.Params())/1e9)
	fmt.Printf("dense equivalent: same active compute per token\n\n")

	fmt.Println("batch | active experts | MoE: PUs vs FC-PIM       | dense: PUs vs FC-PIM")
	fmt.Println("------+----------------+--------------------------+---------------------")
	for _, n := range []int{1, 4, 8, 16, 32, 64, 128} {
		mk := moe.FCIterationKernel(n)
		dk := dense.FCIterationKernel(n)
		mpu, mpim, err := papi.CompareFCPlacement(sys, mk)
		if err != nil {
			log.Fatal(err)
		}
		dpu, dpim, err := papi.CompareFCPlacement(sys, dk)
		if err != nil {
			log.Fatal(err)
		}
		pick := func(pu, pim papi.Seconds) string {
			if pim <= pu {
				return fmt.Sprintf("FC-PIM wins (%v vs %v)", pim, pu)
			}
			return fmt.Sprintf("PUs win    (%v vs %v)", pu, pim)
		}
		fmt.Printf("%5d | %14.1f | %-24s | %s\n",
			n, moe.ActiveExperts(n), pick(mpu, mpim), pick(dpu, dpim))
	}

	fmt.Println("\nexpert weight slices live in-bank on FC-PIM; the lower reuse of MoE FC")
	fmt.Println("keeps it on the PIM side of the α threshold across a wider batch range (§6.5)")
}
