// Serving under an SLO: the §3.2(a) scenario. An online service receives a
// Poisson stream of general-qa requests and must keep per-token latency
// under a service-level objective. The example sweeps the admission cap
// (initial RLP) under mixed continuous batching and reports, per cap, the
// makespan and per-token latency — showing the throughput/latency trade-off
// that makes the feasible batch size workload-dependent.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	sys := papi.NewPAPI()
	cfg := papi.GPT3_66B()
	stream := papi.GeneralQA().Poisson(96, 25, 11)

	// A request receives one token per decoding iteration, so its per-token
	// latency is the iteration time — that is what the SLO bounds.
	slo := papi.Seconds(0.012) // 12 ms per output token

	fmt.Println("max batch | makespan  | token latency | meets 12ms SLO")
	fmt.Println("----------+-----------+---------------+---------------")
	best := 0
	for _, cap := range []int{2, 4, 8, 16, 32, 64} {
		eng, err := papi.NewEngine(sys, cfg, papi.DefaultOptions(1))
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.RunContinuous(stream, cap)
		if err != nil {
			log.Fatal(err)
		}
		tokenLatency := res.DecodeTime / papi.Seconds(res.Iterations)
		ok := tokenLatency <= slo
		if ok && cap > best {
			best = cap
		}
		fmt.Printf("%9d | %9v | %13v | %v\n", cap, res.TotalTime(), tokenLatency, ok)
	}
	if best > 0 {
		fmt.Printf("\nlargest admission cap meeting the SLO: %d\n", best)
	} else {
		fmt.Println("\nno admission cap met the SLO")
	}
	fmt.Println("(§3.2: higher RLP raises throughput but also per-request token latency;")
	fmt.Println(" the SLO caps the feasible initial RLP — one of the sources of dynamic parallelism)")
}
