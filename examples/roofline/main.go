// Roofline characterisation: the Fig. 2 / §5.2.1 workflow as a user would
// run it. For a chosen model the example sweeps parallelisation levels,
// compares the FC kernel's time on the GPU PUs against the FC-PIM devices
// (papi.CompareFCPlacement), and shows where the crossover — the α threshold
// the scheduler calibrates offline — falls.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	sys := papi.NewPAPI()
	cfg := papi.GPT3_175B()

	fmt.Printf("FC kernel of one %s decoding iteration: GPU PUs vs FC-PIM\n\n", cfg.Name)
	fmt.Println("RLP×TLP | PUs        | FC-PIM     | winner")
	fmt.Println("--------+------------+------------+--------")
	crossover := 0
	for _, p := range []int{1, 2, 4, 8, 16, 24, 28, 32, 48, 64, 128, 256} {
		k := cfg.FCIterationKernel(p)
		pu, fcpim, err := papi.CompareFCPlacement(sys, k)
		if err != nil {
			log.Fatal(err)
		}
		winner := "FC-PIM"
		if pu < fcpim {
			winner = "PUs"
			if crossover == 0 {
				crossover = p
			}
		}
		fmt.Printf("%7d | %-10v | %-10v | %s\n", p, pu, fcpim, winner)
	}
	fmt.Printf("\nPUs overtake FC-PIM near RLP×TLP = %d; the scheduler's calibrated α is %d\n",
		crossover, papi.DefaultAlpha)
	fmt.Println("below α the FC kernel is memory-bound on the GPU and PAPI offloads it to FC-PIM")
}
