// Deterministic fault injection: what a replica crash at the diurnal peak
// costs a static fleet versus an autoscaled one. The example builds a
// one-crash fault plan, replays identical tiered-diurnal traffic through
// both fleets under a bounded-retry failover policy, and compares the
// resilience ledgers — faults fired, failover retries, re-prefilled context,
// availability, and the interactive latency tail. It then shows the other
// two fault kinds (a straggler window and a fleet-wide brownout that sheds
// batch admissions), and closes by drawing a seeded MTBF plan and
// round-tripping it through its byte-stable JSON form.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	cfg := papi.LLaMA65B()
	slo := papi.SLO{TokenLatency: papi.Seconds(0.012)}

	sc, err := papi.ScenarioByName("tiered-diurnal")
	if err != nil {
		log.Fatal(err)
	}
	stream, err := sc.Requests(240, 42)
	if err != nil {
		log.Fatal(err)
	}

	// --- A permanent crash of replica 0 at the load peak (t = 5 s).
	crash := papi.FaultPlan{Name: "crash-peak", Faults: []papi.Fault{
		{Kind: papi.FaultCrash, Replica: 0, At: 5},
	}}

	fmt.Println("crash at the diurnal peak, identical traffic:")
	fmt.Println("fleet      | faults | retries | re-prefill tok | avail | int TPOT p99")
	fmt.Println("-----------+--------+---------+----------------+-------+-------------")
	for _, row := range []struct {
		name string
		auto *papi.AutoscaleOptions
	}{
		{"static-3", nil},
		{"autoscaled", papi.DefaultAutoscale(1, 4, slo)},
	} {
		f := runFleet(cfg, stream, row.auto, &crash)
		fmt.Printf("%-10s | %6d | %7d | %14d | %.3f | %12v\n",
			row.name, f.Faults, f.Retries, f.FailoverReprefillTokens,
			f.Availability(), papi.Seconds(f.InteractiveTPOT.P99))
	}

	// --- The window faults: a slow node, then a degraded attention fabric.
	// The brownout sheds new batch-class admissions for its duration, so the
	// interactive tier keeps its latency while the parked work still runs.
	straggler := papi.FaultPlan{Name: "slow-node", Faults: []papi.Fault{
		{Kind: papi.FaultStraggler, Replica: 0, At: 4, Duration: 3, Factor: 3},
	}}
	brownout := papi.FaultPlan{Name: "link-brownout", Faults: []papi.Fault{
		{Kind: papi.FaultBrownout, At: 4, Duration: 3, Factor: 2},
	}}
	fmt.Println("\nwindow faults on the static fleet:")
	for _, plan := range []papi.FaultPlan{straggler, brownout} {
		f := runFleet(cfg, stream, nil, &plan)
		fmt.Printf("  %-13s  shed %2d batch arrivals · availability %.3f · int TPOT p99 %v\n",
			plan.Name, f.ShedArrivals, f.Availability(), papi.Seconds(f.InteractiveTPOT.P99))
	}

	// --- Seeded stochastic plans: the same options always draw the same
	// schedule, and export → import → export is byte-identical, so a drawn
	// plan can be committed next to the trace it perturbs.
	plan, err := papi.GenerateMTBFPlan(papi.MTBFOptions{
		Name: "mtbf-demo", Replicas: 3, Horizon: 20, MTBF: 12, MTTR: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	data, err := plan.Export()
	if err != nil {
		log.Fatal(err)
	}
	back, err := papi.ImportFaultPlan(data)
	if err != nil {
		log.Fatal(err)
	}
	again, err := back.Export()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMTBF plan %q (seed %d): %d faults, round-trip byte-identical: %v\n",
		plan.Name, plan.Seed, len(plan.Faults), bytes.Equal(data, again))
	for _, f := range plan.Faults {
		if f.Duration > 0 {
			fmt.Printf("  %7.3fs  %-9s replica %d ×%.2f for %.3fs\n",
				f.At, f.Kind, f.Replica, f.Factor, f.Duration)
		} else {
			fmt.Printf("  %7.3fs  %-9s replica %d (permanent)\n", f.At, f.Kind, f.Replica)
		}
	}
}

func runFleet(cfg papi.Model, stream []papi.Request, auto *papi.AutoscaleOptions, plan *papi.FaultPlan) *papi.FleetResult {
	replicas := 3
	if auto != nil {
		replicas = 2
	}
	c, err := papi.NewCluster(papi.NewPAPI, cfg, papi.ClusterOptions{
		Replicas:     replicas,
		MaxBatch:     16,
		Router:       papi.LeastOutstanding(),
		Serving:      papi.DefaultOptions(1),
		Autoscale:    auto,
		Faults:       plan,
		Retries:      2,
		RetryBackoff: papi.Seconds(0.05),
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := c.Run(stream)
	if err != nil {
		log.Fatal(err)
	}
	return f
}
