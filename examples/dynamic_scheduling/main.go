// Dynamic scheduling: a Fig. 5(d)-style trace. A batch with widely varying
// output lengths decodes on PAPI; as requests emit <|eos|> the runtime RLP
// decays, the estimated arithmetic intensity (RLP×TLP) crosses the α
// threshold, and the scheduler reschedules the FC kernels from the GPU
// processing units to the FC-PIM devices.
package main

import (
	"fmt"
	"log"

	"github.com/papi-sim/papi"
)

func main() {
	sys := papi.NewPAPI()
	eng, err := papi.NewEngine(sys, papi.GPT3_66B(), papi.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}

	// Batch 48 starts well above α (estimated AI 48); the creative-writing
	// length spread guarantees RLP decays through it.
	res, err := eng.RunBatch(papi.CreativeWriting().Generate(48, 7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("α = %d; initial estimated AI = 48 → FC starts on the PUs\n\n", papi.DefaultAlpha)
	fmt.Println("iter   RLP  est.AI  FC placement")
	last := papi.Placement(-1)
	shown := 0
	for _, it := range res.IterStats {
		// Print the decision points: the first iteration and every change
		// in RLP, up to a screenful.
		if it.Placement != last || it.Index == 0 {
			marker := ""
			if it.Placement != last && it.Index > 0 {
				marker = "  <- RESCHEDULE"
			}
			fmt.Printf("%4d  %4d  %6d  %-6s%s\n", it.Index, it.RLP, it.RLP*it.TLP, it.Placement, marker)
			last = it.Placement
			shown++
		}
	}
	if shown <= 1 {
		fmt.Println("(no reschedule occurred — try a larger batch)")
	}
	fmt.Printf("\ntotal reschedules: %d over %d iterations\n", res.Reschedules, res.Iterations)
	fmt.Printf("decode time %v for %d tokens\n", res.DecodeTime, res.Tokens)
}
