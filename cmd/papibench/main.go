// Command papibench regenerates every figure of the paper's evaluation
// section and prints the tables EXPERIMENTS.md records.
//
//	papibench                      # all figures and ablations
//	papibench -figure 8            # one figure
//	papibench -figure dse          # the design-space exploration grid
//	papibench -list-designs        # the named hardware designs
//	papibench -design PAPI         # inspect one design (name or spec .json)
//	papibench -faults plan.json    # validate and summarise a fault plan
//	papibench -fastpath=off        # force the reference decode path
//	papibench -cpuprofile cpu.out  # write a pprof CPU profile
//	papibench -memprofile mem.out  # write a pprof heap profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/experiments"
	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/serving"
)

func main() {
	which := flag.String("figure", "", "run a single figure (2,3,4,6,7e,7p,8,9,10,11,12,ablation-*,capacity,scenarios,elasticity,dse,kvcache,resilience,scale)")
	designArg := flag.String("design", "", "inspect one hardware design (registry name or spec .json file): validate, print its spec and derived capacities, then exit")
	listDesigns := flag.Bool("list-designs", false, "list the named hardware designs in the registry and exit")
	faultsArg := flag.String("faults", "", "inspect one fault plan .json: validate, print its schedule, then exit (see docs/RESILIENCE.md)")
	fastpath := flag.String("fastpath", "on", "decode-loop fast path: on (memoized cost tables + macro-stepping) or off (reference path); both produce byte-identical output")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	// run's defers terminate the CPU profile before the process exits on
	// any error path, so a failed run never leaves a truncated profile.
	if err := run(*which, *designArg, *faultsArg, *listDesigns, *fastpath, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "papibench: %v\n", err)
		os.Exit(1)
	}
}

// printDesigns lists the registry.
func printDesigns() {
	for _, spec := range design.Registry() {
		fmt.Printf("%-14s %s\n", spec.Name, spec.Description)
	}
}

// inspectDesign resolves a design argument (registry name or spec file),
// builds it, and prints the spec alongside the derived hardware quantities.
func inspectDesign(arg string) error {
	spec, err := design.Resolve(arg)
	if err != nil {
		return err
	}
	sys, err := spec.Build()
	if err != nil {
		return err
	}
	data, err := spec.Export()
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	fmt.Printf("weight capacity %v · KV capacity %v · attention pool %d × %s (%v stream)\n",
		sys.WeightCapacity(), sys.KVCapacity(),
		sys.AttnPIM.Count, sys.AttnPIM.Stack.Config, sys.AttnPIM.StreamBW())
	fmt.Printf("attention fabric %s (%v) · policy %s · prefill on GPU: %v\n",
		sys.AttnLink.Name, sys.AttnLink.BW, sys.Policy.Name(), sys.PrefillOnGPU)
	return nil
}

// inspectFaults loads a fault plan, validates it, and prints its schedule in
// event order — the dry-run companion to `papiserve -faults`, so a plan's
// shape can be checked before spending a fleet run on it.
func inspectFaults(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	plan, err := faults.ImportPlan(data)
	if err != nil {
		return err
	}
	fmt.Printf("plan %q: %d faults", plan.Name, len(plan.Faults))
	if plan.Seed != 0 {
		fmt.Printf(" (generator seed %d)", plan.Seed)
	}
	fmt.Println()
	for _, f := range plan.Faults {
		switch {
		case !f.Window():
			fmt.Printf("  %8.3fs  crash      replica %d (permanent)\n", f.At, f.Replica)
		case f.Kind == faults.KindStraggler:
			fmt.Printf("  %8.3fs  straggler  replica %d ×%.2f for %.3fs\n", f.At, f.Replica, f.Factor, f.Duration)
		default:
			fmt.Printf("  %8.3fs  brownout   fleet-wide ×%.2f for %.3fs\n", f.At, f.Factor, f.Duration)
		}
	}
	return nil
}

func run(which, designArg, faultsArg string, listDesigns bool, fastpath, cpuprofile, memprofile string) error {
	// Validated up front so a typo never goes silently unused, whichever
	// mode runs.
	switch fastpath {
	case "on", "true", "1":
		serving.SetDefaultFastPath(true)
	case "off", "false", "0":
		serving.SetDefaultFastPath(false)
	default:
		return fmt.Errorf("-fastpath must be on or off, got %q", fastpath)
	}

	if listDesigns || designArg != "" || faultsArg != "" {
		// Inspection modes run no figures; any combined request they would
		// silently drop is rejected instead.
		if which != "" || cpuprofile != "" || memprofile != "" {
			return fmt.Errorf("-design/-list-designs/-faults cannot be combined with -figure, -cpuprofile, or -memprofile")
		}
		modes := 0
		for _, on := range []bool{listDesigns, designArg != "", faultsArg != ""} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			return fmt.Errorf("-design, -list-designs, and -faults are mutually exclusive")
		}
		if listDesigns {
			printDesigns()
			return nil
		}
		if faultsArg != "" {
			return inspectFaults(faultsArg)
		}
		return inspectDesign(designArg)
	}

	// Validate the figure selection before profiling starts.
	if which != "" {
		if _, err := experiments.FigureByID(which); err != nil {
			return fmt.Errorf("unknown figure %q", which)
		}
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	for _, f := range experiments.Figures() {
		if which != "" && f.ID != which {
			continue
		}
		fmt.Printf("================ figure %s ================\n", f.ID)
		out, err := f.Run()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.ID, err)
		}
		fmt.Println(out.String())
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
