// Command papibench regenerates every figure of the paper's evaluation
// section and prints the tables EXPERIMENTS.md records.
//
//	papibench                      # all figures and ablations
//	papibench -figure 8            # one figure
//	papibench -fastpath=off        # force the reference decode path
//	papibench -cpuprofile cpu.out  # write a pprof CPU profile
//	papibench -memprofile mem.out  # write a pprof heap profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/papi-sim/papi/internal/experiments"
	"github.com/papi-sim/papi/internal/serving"
)

func main() {
	which := flag.String("figure", "", "run a single figure (2,3,4,6,7e,7p,8,9,10,11,12,ablation-*,capacity,scenarios,elasticity)")
	fastpath := flag.String("fastpath", "on", "decode-loop fast path: on (memoized cost tables + macro-stepping) or off (reference path); both produce byte-identical output")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	// run's defers terminate the CPU profile before the process exits on
	// any error path, so a failed run never leaves a truncated profile.
	if err := run(*which, *fastpath, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "papibench: %v\n", err)
		os.Exit(1)
	}
}

func run(which, fastpath, cpuprofile, memprofile string) error {
	switch fastpath {
	case "on", "true", "1":
		serving.SetDefaultFastPath(true)
	case "off", "false", "0":
		serving.SetDefaultFastPath(false)
	default:
		return fmt.Errorf("-fastpath must be on or off, got %q", fastpath)
	}

	// Validate the figure selection before profiling starts.
	if which != "" {
		if _, err := experiments.FigureByID(which); err != nil {
			return fmt.Errorf("unknown figure %q", which)
		}
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	for _, f := range experiments.Figures() {
		if which != "" && f.ID != which {
			continue
		}
		fmt.Printf("================ figure %s ================\n", f.ID)
		fmt.Println(f.Run().String())
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
