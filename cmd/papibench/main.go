// Command papibench regenerates every figure of the paper's evaluation
// section and prints the tables EXPERIMENTS.md records.
//
//	papibench            # all figures and ablations
//	papibench -figure 8  # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/papi-sim/papi/internal/experiments"
)

type figure struct {
	id  string
	run func() fmt.Stringer
}

func figures() []figure {
	return []figure{
		{"2", func() fmt.Stringer { return experiments.Fig2() }},
		{"3", func() fmt.Stringer { return experiments.Fig3(64) }},
		{"4", func() fmt.Stringer { return experiments.Fig4() }},
		{"6", func() fmt.Stringer { return experiments.Fig6() }},
		{"7e", func() fmt.Stringer { return experiments.Fig7Energy() }},
		{"7p", func() fmt.Stringer { return experiments.Fig7Power() }},
		{"8", func() fmt.Stringer { return experiments.Fig8() }},
		{"9", func() fmt.Stringer { return experiments.Fig9() }},
		{"10", func() fmt.Stringer { return experiments.Fig10() }},
		{"11", func() fmt.Stringer { return experiments.Fig11() }},
		{"12", func() fmt.Stringer { return experiments.Fig12() }},
		{"ablation-alpha", func() fmt.Stringer { return experiments.AblationAlpha() }},
		{"ablation-hybrid", func() fmt.Stringer { return experiments.AblationHybridPIM() }},
		{"ablation-sched", func() fmt.Stringer { return experiments.AblationDynamicVsStatic() }},
		{"ablation-batching", func() fmt.Stringer { return experiments.AblationBatching() }},
		{"ablation-schedcost", func() fmt.Stringer { return experiments.AblationSchedulingCost() }},
		{"capacity", func() fmt.Stringer { return experiments.Capacity() }},
		{"scenarios", func() fmt.Stringer { return experiments.Scenarios() }},
	}
}

func main() {
	which := flag.String("figure", "", "run a single figure (2,3,4,6,7e,7p,8,9,10,11,12,ablation-*,capacity,scenarios)")
	flag.Parse()

	ran := false
	for _, f := range figures() {
		if *which != "" && f.id != *which {
			continue
		}
		ran = true
		fmt.Printf("================ figure %s ================\n", f.id)
		fmt.Println(f.run().String())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "papibench: unknown figure %q\n", *which)
		os.Exit(1)
	}
}
