// Command papicalib runs the offline α-threshold calibration of §5.2.1: it
// executes the FC kernel of one decoding iteration on both the GPU PUs and
// the FC-PIM devices across parallelisation levels and reports where the
// crossover falls for each evaluation model.
package main

import (
	"flag"
	"fmt"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/stats"
)

func main() {
	verbose := flag.Bool("v", false, "print the full sweep tables")
	flag.Parse()

	sys := core.NewPAPI(0)
	levels := []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 48, 64, 96, 128}

	summary := stats.NewTable("Offline α calibration (GPU PUs vs FC-PIM, one decoding iteration of FC)",
		"model", "crossover α")
	for _, cfg := range model.All() {
		alpha := sched.Calibrate(cfg, sys.GPU, sys.FCPIM)
		summary.AddRow(cfg.Name, fmt.Sprintf("%.0f", alpha))
		if *verbose {
			t := stats.NewTable(cfg.Name, "RLP×TLP", "GPU time", "FC-PIM time", "winner")
			for _, row := range sched.CalibrationSweep(cfg, sys.GPU, sys.FCPIM, levels) {
				t.AddRow(fmt.Sprintf("%d", row.Parallelism),
					row.GPUTime.String(), row.PIMTime.String(), row.Winner.String())
			}
			fmt.Println(t.String())
		}
	}
	fmt.Println(summary.String())
	fmt.Printf("configured default: α = %d\n\n", core.DefaultAlpha)

	// §6.1–6.2: derive the hybrid PIM devices from the area and power
	// constraints (FC reuse ≥ 4 at the evaluated parallelism; attention
	// reuse ≈ 1 in the worst case).
	fc, attn, err := pim.DeriveHybridPIM(pim.DefaultEnergyModel(), 4, 1)
	if err != nil {
		fmt.Println("hybrid PIM derivation failed:", err)
		return
	}
	d := stats.NewTable("Hybrid PIM derivation (area Eq. 3 + 116 W budget)",
		"role", "config", "banks/stack", "FPUs/stack", "capacity", "min in-budget reuse")
	d.AddRow("FC-PIM", fc.Stack.Config.String(),
		fmt.Sprintf("%d", fc.Stack.Banks()), fmt.Sprintf("%d", fc.Stack.FPUs()),
		fc.Capacity().String(), fmt.Sprintf("%.0f", fc.MinInBudgetReuse))
	d.AddRow("Attn-PIM", attn.Stack.Config.String(),
		fmt.Sprintf("%d", attn.Stack.Banks()), fmt.Sprintf("%d", attn.Stack.FPUs()),
		attn.Capacity().String(), fmt.Sprintf("%.0f", attn.MinInBudgetReuse))
	fmt.Println(d.String())
}
