// Command benchjson converts `go test -bench` output into a stable JSON
// document, and diffs two such documents — the repo's perf-trajectory
// tooling (scripts/bench.sh writes BENCH_PR<N>.json snapshots; diffing two
// snapshots shows what a PR did to the hot paths).
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_PR3.json
//	benchjson -diff BENCH_PR2.json BENCH_PR3.json
//	benchjson -diff -fail-over 25 BENCH_PR3.json bench.json   # gate: exit 1 on >25% regressions
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measurements: the metric map carries the
// standard go-test units (ns/op, B/op, allocs/op) plus any custom
// b.ReportMetric units (e.g. papi-vs-a100attacc-x).
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the JSON snapshot benchjson emits.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parse(r io.Reader) (Document, error) {
	var doc Document
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix so snapshots from different
		// machines compare by benchmark identity.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Runs: runs, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}

func load(path string) (Document, error) {
	var doc Document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	err = json.Unmarshal(data, &doc)
	return doc, err
}

// gatedUnits are the metrics the -fail-over tolerance gate judges:
// allocations and bytes per op, which are deterministic for this module's
// fixed-seed benchmarks and identical across machines. ns/op stays
// informational — the committed snapshot and a CI runner are different
// hardware, so gating wall time would fail on machine speed, not code.
var gatedUnits = map[string]bool{"allocs/op": true, "B/op": true}

// diff renders old-vs-new for the units both snapshots share, and flags
// benchmarks that appear on only one side — a tracked hot-path benchmark
// silently disappearing is exactly what this tool exists to catch. With
// failOver > 0 it returns the gated metrics that regressed by more than
// failOver percent.
func diff(oldDoc, newDoc Document, w io.Writer, failOver float64) (regressions []string) {
	oldBy := map[string]Benchmark{}
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]bool{}
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = true
	}
	fmt.Fprintf(w, "%-34s %-12s %14s %14s %9s\n", "benchmark", "unit", "old", "new", "delta")
	for _, ob := range oldDoc.Benchmarks {
		if !newBy[ob.Name] {
			fmt.Fprintf(w, "%-34s %-12s %14s %14s %9s\n", ob.Name, "", "", "(absent)", "removed")
		}
	}
	for _, nb := range newDoc.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-34s %-12s %14s %14s %9s\n", nb.Name, "", "(absent)", "", "new")
			continue
		}
		units := make([]string, 0, len(nb.Metrics))
		for u := range nb.Metrics {
			if _, ok := ob.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			o, n := ob.Metrics[u], nb.Metrics[u]
			delta := "~"
			if o != 0 {
				pct := 100 * (n - o) / o
				delta = fmt.Sprintf("%+.1f%%", pct)
				if failOver > 0 && gatedUnits[u] && pct > failOver {
					regressions = append(regressions,
						fmt.Sprintf("%s %s regressed %+.1f%% (%.4g → %.4g), tolerance %g%%",
							nb.Name, u, pct, o, n, failOver))
				}
			}
			fmt.Fprintf(w, "%-34s %-12s %14.4g %14.4g %9s\n", nb.Name, u, o, n, delta)
		}
	}
	return regressions
}

func main() {
	diffMode := flag.Bool("diff", false, "diff two BENCH json files instead of converting bench output")
	failOver := flag.Float64("fail-over", 0, "with -diff: exit non-zero when any allocs/op or B/op metric regresses by more than this percentage (0 disables the gate; wall time stays informational)")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-fail-over PCT] OLD.json NEW.json")
			os.Exit(2)
		}
		oldDoc, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		newDoc, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		regressions := diff(oldDoc, newDoc, os.Stdout, *failOver)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchjson: %d regression(s) beyond tolerance:\n", len(regressions))
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		return
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
