// Command dramsim exercises the command-level HBM3 DRAM substrate directly:
// it streams rows through one channel and reports sustained bandwidth,
// per-byte energy and command statistics — the calibration measurements
// behind the analytic PIM model's constants.
package main

import (
	"flag"
	"fmt"

	"github.com/papi-sim/papi/internal/dram"
)

func main() {
	var (
		rows       = flag.Int("rows", 64, "rows to stream per bank")
		broadcast  = flag.Bool("broadcast", false, "use HBM-PIM all-bank mode (one command drives all 16 banks)")
		write      = flag.Bool("write", false, "stream writes instead of reads")
		singleBank = flag.Bool("single-bank", false, "restrict the stream to one bank")
	)
	flag.Parse()

	spec := dram.StreamSpec{Rows: *rows, Write: *write, Broadcast: *broadcast}
	if *singleBank {
		spec.BankGroups = []int{0}
		spec.Banks = []int{0}
	}
	g, t, e := dram.PIMChannelGeometry(), dram.HBM3Timing(), dram.HBM3Energy()
	res := dram.RunStream(g, t, e, spec)

	fmt.Printf("geometry        %d bank groups × %d banks, %v rows, %v columns\n",
		g.BankGroups, g.BanksPerGroup, g.RowBytes, g.ColBytes)
	fmt.Printf("streamed        %v in %v\n", res.Bytes, res.Elapsed)
	fmt.Printf("bandwidth       %v", res.Bandwidth)
	if *singleBank {
		fmt.Printf("  (analytic model per-bank constant: 2.664 GB/s)")
	}
	fmt.Println()
	fmt.Printf("energy          %.1f pJ/B  (analytic DRAM-access constant: 43.9 pJ/B)\n", float64(res.EnergyPerByte))
	s := res.Stats
	fmt.Printf("commands        ACT %d  PRE %d  RD %d  WR %d  REF %d\n", s.Acts, s.Pres, s.Reads, s.Writes, s.Refreshes)
	fmt.Printf("row buffer      %.1f%% hit rate\n", 100*s.RowHitRate())
	fmt.Printf("command energy  %v  background %v\n", s.CommandEnergy, s.BackgroundEnergy)
}
