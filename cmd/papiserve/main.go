// Command papiserve runs fleet-level serving simulations: N replica engines
// consume a request stream behind a routing policy, reporting aggregate
// throughput, energy, tail latency percentiles, and SLO attainment. The
// fleet's hardware comes from the named design registry or from declarative
// spec files (-design takes names or .json paths; a comma-separated list
// provisions a mixed-design fleet whose replicas target the list's design
// ratio — repeat an entry to weight it). The
// stream comes from a flat Poisson rate, a named workload scenario (bursty,
// diurnal, closed-loop multi-turn, long-context), or a previously saved
// trace; any run's realised arrivals can be exported as a byte-stable trace
// for replay.
//
// Examples:
//
//	papiserve -design PAPI -replicas 4 -router least-outstanding -rate 40 -requests 128
//	papiserve -design A100+AttAcc -replicas 2 -router kv-headroom -slo 12
//	papiserve -design "PAPI,A100+AttAcc" -replicas 4 -rate 30
//	papiserve -design examples/designs/papi-wide.json -replicas 2
//	papiserve -list-designs
//	papiserve -sweep 2,5,10,20,40,80 -replicas 2 -requests 64
//	papiserve -scenario burst-creative -replicas 2 -requests 48
//	papiserve -scenario chat-multiturn -save-trace chat.json
//	papiserve -trace chat.json -design "PIM-only PAPI"
//	papiserve -scenario tiered-diurnal -autoscale 1:4 -requests 240
//	papiserve -rate 30 -classes 0.4 -replicas 2 -requests 96
//	papiserve -scenario chat-multiturn -kv-blocks 32 -kv-cold 4 -requests 48
//	papiserve -faults examples/resilience/crash-peak.json -autoscale 1:4 -retries 2
//	papiserve -timeout 5 -retries 1 -rate 40 -requests 96
//	papiserve -scenario tiered-diurnal -requests 100000 -shards 8
//	papiserve -rate 50 -requests 5000 -checkpoint day.json
//	papiserve -scenario tiered-diurnal -requests 100000 -cpuprofile cpu.out
//	papiserve -rate 40 -requests 10000 -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/experiments"
	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func main() {
	var (
		designArg = flag.String("design", "PAPI", `fleet design(s): registry names ("PAPI", "A100+AttAcc", "A100+HBM-PIM", "AttAcc-only", "PIM-only PAPI") or spec .json files; a comma-separated list runs a mixed fleet`)
		listDes   = flag.Bool("list-designs", false, "list the named designs in the registry and exit")
		modelName = flag.String("model", "LLaMA-65B", `model: "OPT-30B", "LLaMA-65B", "GPT-3 66B", "GPT-3 175B"`)
		dataset   = flag.String("dataset", "general-qa", `workload: "creative-writing", "general-qa", "long-context"`)
		replicas  = flag.Int("replicas", 2, "replica engine count")
		router    = flag.String("router", "least-outstanding", `routing policy: "round-robin", "least-outstanding", "kv-headroom"`)
		rate      = flag.Float64("rate", 20, "offered arrival rate (requests/s)")
		requests  = flag.Int("requests", 64, "request count in the stream (conversation count for closed-loop scenarios)")
		maxBatch  = flag.Int("maxbatch", 16, "per-replica continuous-batching admission cap")
		spec      = flag.Int("spec", 1, "speculation length (TLP); 1 disables speculative decoding")
		seed      = flag.Int64("seed", 42, "workload and acceptance seed")
		sloMS     = flag.Float64("slo", 12, "TPOT SLO in milliseconds (0 = unbounded)")
		target    = flag.Float64("target", 0.9, "attainment target for -sweep capacity headlines")
		sweep     = flag.String("sweep", "", "comma-separated QPS ladder: run the capacity sweep over all designs instead of one fleet")
		scenario  = flag.String("scenario", "", "named workload scenario (see docs/SCENARIOS.md); overrides -dataset/-rate")
		traceIn   = flag.String("trace", "", "replay a saved trace file instead of generating arrivals")
		traceOut  = flag.String("save-trace", "", "export the run's realised arrival stream as a trace file")
		autoscale = flag.String("autoscale", "", `elastic fleet bounds "min:max": scale replicas with load instead of static provisioning (-replicas is the initial size)`)
		classes   = flag.Float64("classes", 0, "fraction of generated requests tagged batch-class (preemptible); scenarios and traces carry their own classes")
		kvBlocks  = flag.Int("kv-blocks", 0, "block-level KV cache: tokens per block, prefix sharing on (0 = plain byte-ledger accounting)")
		kvCold    = flag.Float64("kv-cold", 4, "with -kv-blocks: cold-tier capacity as a multiple of the hot attention pool (negative disables the tier)")
		faultsIn  = flag.String("faults", "", "inject a fault plan .json (crashes, stragglers, brownouts; see docs/RESILIENCE.md)")
		retries   = flag.Int("retries", 2, "bounded failover: retry a request lost to a crash or timeout at most this many times")
		timeoutS  = flag.Float64("timeout", 0, "per-attempt request timeout in seconds (0 = none); timed-out attempts cancel and retry under -retries")
		shards    = flag.Int("shards", 1, "drive independent replicas on up to this many goroutines between fleet sync points; results are bit-identical to serial (open-loop streams only, see docs/SCALE.md)")
		checkpt   = flag.String("checkpoint", "", "merge this run's mergeable fleet snapshot into the named .json (created if absent), so long runs split across invocations")
		retain    = flag.Bool("retain-requests", false, "keep every per-request metrics record (FleetResult.Requests); off by default so large runs stay constant-memory")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *listDes {
		for _, spec := range design.Registry() {
			fmt.Printf("%-14s %s\n", spec.Name, spec.Description)
		}
		return
	}

	if err := run(options{
		design: *designArg, modelName: *modelName, dataset: *dataset,
		routerName: *router, sweep: *sweep, scenario: *scenario,
		traceIn: *traceIn, traceOut: *traceOut, autoscale: *autoscale,
		replicas: *replicas, requests: *requests, maxBatch: *maxBatch,
		spec: *spec, seed: *seed, rate: *rate, sloMS: *sloMS, target: *target,
		classes: *classes, kvBlocks: *kvBlocks, kvCold: *kvCold,
		faults: *faultsIn, retries: *retries, timeoutS: *timeoutS,
		shards: *shards, checkpoint: *checkpt, retainRequests: *retain,
		cpuProfile: *cpuProf, memProfile: *memProf,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "papiserve:", err)
		os.Exit(1)
	}
}

type options struct {
	design, modelName, dataset, routerName, sweep, scenario, traceIn, traceOut string
	autoscale, faults, checkpoint, cpuProfile, memProfile                      string

	replicas, requests, maxBatch, spec, kvBlocks, retries, shards int
	seed                                                          int64
	rate, sloMS, target, classes, kvCold, timeoutS                float64
	retainRequests                                                bool
}

// run brackets the simulation with the optional pprof captures so the
// fleet-scale hot path (macro-stepping, sharded barriers, the routing
// signals) can be profiled exactly as papibench profiles a single engine.
func run(o options) error {
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := serve(o); err != nil {
		return err
	}
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		// Settle the heap first so the profile shows live retention, not
		// garbage the next collection would have reclaimed anyway.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func serve(o options) error {
	cfg, err := model.ByName(o.modelName)
	if err != nil {
		return err
	}
	slo := workload.SLO{TokenLatency: units.Milliseconds(o.sloMS)}
	if o.classes < 0 || o.classes > 1 {
		return fmt.Errorf("-classes %g outside [0, 1]", o.classes)
	}

	if o.sweep != "" {
		if o.scenario != "" || o.traceIn != "" || o.traceOut != "" || o.autoscale != "" || o.classes != 0 {
			return fmt.Errorf("-sweep cannot be combined with -scenario, -trace, -save-trace, -autoscale, or -classes")
		}
		if o.faults != "" || o.timeoutS != 0 {
			return fmt.Errorf("-sweep evaluates fault-free capacity and cannot be combined with -faults or -timeout")
		}
		// The capacity sweep evaluates the fixed comparison set; silently
		// ignoring a requested design would misattribute its results.
		if o.design != "PAPI" {
			return fmt.Errorf("-sweep evaluates the fixed design comparison set and cannot be combined with -design")
		}
		ds, err := workload.ByName(o.dataset)
		if err != nil {
			return err
		}
		rates, err := parseRates(o.sweep)
		if err != nil {
			return err
		}
		res := experiments.CapacitySweep(experiments.CapacitySystems(), cfg, ds,
			o.replicas, o.requests, o.maxBatch, rates, slo, o.target)
		fmt.Print(res)
		return nil
	}
	if o.scenario != "" && o.traceIn != "" {
		return fmt.Errorf("-scenario and -trace are mutually exclusive")
	}

	rt, err := cluster.RouterByName(o.routerName)
	if err != nil {
		return err
	}
	if o.classes > 0 && (o.scenario != "" || o.traceIn != "") {
		return fmt.Errorf("-classes only applies to generated streams; scenarios and traces carry their own classes")
	}
	var auto *cluster.AutoscaleOptions
	if o.autoscale != "" {
		min, max, err := parseBounds(o.autoscale)
		if err != nil {
			return err
		}
		auto = cluster.DefaultAutoscale(min, max, slo)
	}
	specs, err := resolveDesigns(o.design)
	if err != nil {
		return err
	}
	if o.kvBlocks < 0 {
		return fmt.Errorf("-kv-blocks %d is negative", o.kvBlocks)
	}
	opt := serving.DefaultOptions(o.spec)
	opt.Seed = o.seed
	if o.kvBlocks > 0 {
		opt.KV = &kv.Options{BlockTokens: o.kvBlocks, Sharing: true, ColdFactor: o.kvCold}
	}
	if o.shards < 1 {
		return fmt.Errorf("-shards %d must be ≥ 1", o.shards)
	}
	copt := cluster.Options{
		Replicas:  o.replicas,
		MaxBatch:  o.maxBatch,
		Router:    rt,
		Serving:   opt,
		Autoscale: auto,
		Retries:   o.retries,
		Timeout:   units.Seconds(o.timeoutS),
		Shards:    o.shards,
		// Per-request records and the realised stream are opt-in: the
		// streaming aggregate already carries the digests, so by default a
		// run's memory stays constant in stream length.
		RetainRequests: o.retainRequests,
		RetainStream:   o.traceOut != "",
	}
	if o.faults != "" {
		data, err := os.ReadFile(o.faults)
		if err != nil {
			return err
		}
		plan, err := faults.ImportPlan(data)
		if err != nil {
			return err
		}
		fmt.Printf("injecting fault plan %q (%d faults)\n", plan.Name, len(plan.Faults))
		copt.Faults = &plan
	}
	if copt.Faults != nil || copt.Timeout > 0 {
		// Deterministic exponential backoff between failover attempts; the
		// fixed base keeps CLI runs reproducible without one more knob.
		copt.RetryBackoff = units.Milliseconds(50)
	}
	c, err := cluster.NewFromSpecs(specs, cfg, copt)
	if err != nil {
		return err
	}

	var f *cluster.FleetResult
	traceName, traceScenario := "papiserve", ""
	switch {
	case o.traceIn != "":
		data, err := os.ReadFile(o.traceIn)
		if err != nil {
			return err
		}
		tr, err := workload.ImportTrace(data)
		if err != nil {
			return err
		}
		fmt.Printf("replaying trace %q (%d requests, scenario %q)\n", tr.Name, len(tr.Requests), tr.Scenario)
		traceName, traceScenario = tr.Name, tr.Scenario
		f, err = c.Run(tr.Workload())
		if err != nil {
			return err
		}
	case o.scenario != "":
		sc, err := workload.ScenarioByName(o.scenario)
		if err != nil {
			return err
		}
		traceName, traceScenario = sc.Name, sc.Name
		if sc.ClosedLoop() {
			plan, err := sc.Plan(o.requests, o.seed)
			if err != nil {
				return err
			}
			fmt.Printf("scenario %q: %d conversations, %d turns\n",
				sc.Name, len(plan), workload.TotalTurns(plan))
			f, err = c.RunPlan(plan)
			if err != nil {
				return err
			}
		} else {
			reqs, err := sc.Requests(o.requests, o.seed)
			if err != nil {
				return err
			}
			f, err = c.Run(reqs)
			if err != nil {
				return err
			}
		}
	default:
		ds, err := workload.ByName(o.dataset)
		if err != nil {
			return err
		}
		reqs := ds.Poisson(o.requests, o.rate, o.seed)
		if o.classes > 0 {
			workload.AssignClasses(reqs, o.classes, o.seed+1)
		}
		f, err = c.Run(reqs)
		if err != nil {
			return err
		}
	}

	fmt.Print(f)
	if o.sloMS > 0 {
		fmt.Printf("SLO attainment (TPOT ≤ %v): %.1f%%\n", slo.TokenLatency, 100*f.Attainment(slo))
		for _, d := range f.PerDesign {
			if d.Requests == 0 {
				fmt.Printf("  %-14s n/a (served no requests)\n", d.Design)
				continue
			}
			fmt.Printf("  %-14s %.1f%%\n", d.Design, 100*d.Attainment(slo))
		}
	}
	if o.traceOut != "" {
		tr := workload.NewTrace(traceName, traceScenario, o.seed, f.Stream)
		data, err := tr.Export()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("saved %d realised arrivals to %s\n", len(tr.Requests), o.traceOut)
	}
	if o.checkpoint != "" {
		if err := mergeCheckpoint(o.checkpoint, f); err != nil {
			return err
		}
	}
	return nil
}

// mergeCheckpoint folds the run's mergeable snapshot into the named file:
// absent, the file becomes this run's checkpoint; present, it accumulates —
// so a long run split across invocations keeps one merged ledger and digest.
func mergeCheckpoint(path string, f *cluster.FleetResult) error {
	cp := f.Checkpoint()
	if data, err := os.ReadFile(path); err == nil {
		prior, err := cluster.ImportCheckpoint(data)
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", path, err)
		}
		if err := prior.Merge(cp); err != nil {
			return err
		}
		cp = prior
	} else if !os.IsNotExist(err) {
		return err
	}
	data, err := cp.Export()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("checkpoint %s now merges %d segment(s):\n%s", path, cp.Runs, cp)
	return nil
}

// resolveDesigns turns the -design argument into the fleet's design list:
// comma-separated registry names and/or spec .json files.
func resolveDesigns(arg string) ([]design.Spec, error) {
	var specs []design.Spec
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("-design has an empty entry in %q", arg)
		}
		spec, err := design.Resolve(part)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func parseBounds(s string) (min, max int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf(`-autoscale wants "min:max", got %q`, s)
	}
	min, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err == nil {
		max, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	}
	if err != nil || min < 1 || max < min {
		return 0, 0, fmt.Errorf(`-autoscale wants "min:max" with 1 ≤ min ≤ max, got %q`, s)
	}
	return min, max, nil
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid sweep rate %q", part)
		}
		rates = append(rates, v)
	}
	return rates, nil
}
