// Command papiserve runs fleet-level serving simulations: N replica engines
// of one system design consume a Poisson request stream behind a routing
// policy, reporting aggregate throughput, energy, tail latency percentiles,
// and SLO attainment.
//
// Examples:
//
//	papiserve -design PAPI -replicas 4 -router least-outstanding -rate 40 -requests 128
//	papiserve -design A100+AttAcc -replicas 2 -router kv-headroom -slo 12
//	papiserve -sweep 2,5,10,20,40,80 -replicas 2 -requests 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/experiments"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func main() {
	var (
		design    = flag.String("design", "PAPI", `system design: "PAPI", "A100+AttAcc", "A100+HBM-PIM", "AttAcc-only", "PIM-only PAPI"`)
		modelName = flag.String("model", "LLaMA-65B", `model: "OPT-30B", "LLaMA-65B", "GPT-3 66B", "GPT-3 175B"`)
		dataset   = flag.String("dataset", "general-qa", `workload: "creative-writing" or "general-qa"`)
		replicas  = flag.Int("replicas", 2, "replica engine count")
		router    = flag.String("router", "least-outstanding", `routing policy: "round-robin", "least-outstanding", "kv-headroom"`)
		rate      = flag.Float64("rate", 20, "offered arrival rate (requests/s)")
		requests  = flag.Int("requests", 64, "request count in the stream")
		maxBatch  = flag.Int("maxbatch", 16, "per-replica continuous-batching admission cap")
		spec      = flag.Int("spec", 1, "speculation length (TLP); 1 disables speculative decoding")
		seed      = flag.Int64("seed", 42, "workload and acceptance seed")
		sloMS     = flag.Float64("slo", 12, "TPOT SLO in milliseconds (0 = unbounded)")
		target    = flag.Float64("target", 0.9, "attainment target for -sweep capacity headlines")
		sweep     = flag.String("sweep", "", "comma-separated QPS ladder: run the capacity sweep over all designs instead of one fleet")
	)
	flag.Parse()

	if err := run(*design, *modelName, *dataset, *router, *sweep, *replicas, *requests,
		*maxBatch, *spec, *seed, *rate, *sloMS, *target); err != nil {
		fmt.Fprintln(os.Stderr, "papiserve:", err)
		os.Exit(1)
	}
}

func run(design, modelName, dataset, routerName, sweep string, replicas, requests,
	maxBatch, spec int, seed int64, rate, sloMS, target float64) error {
	cfg, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	ds, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	slo := workload.SLO{TokenLatency: units.Milliseconds(sloMS)}

	if sweep != "" {
		rates, err := parseRates(sweep)
		if err != nil {
			return err
		}
		res := experiments.CapacitySweep(experiments.CapacitySystems(), cfg, ds,
			replicas, requests, maxBatch, rates, slo, target)
		fmt.Print(res)
		return nil
	}

	rt, err := cluster.RouterByName(routerName)
	if err != nil {
		return err
	}
	opt := serving.DefaultOptions(spec)
	opt.Seed = seed
	c, err := cluster.NewByName(design, cfg, cluster.Options{
		Replicas: replicas,
		MaxBatch: maxBatch,
		Router:   rt,
		Serving:  opt,
	})
	if err != nil {
		return err
	}
	f, err := c.Run(ds.Poisson(requests, rate, seed))
	if err != nil {
		return err
	}
	fmt.Print(f)
	if sloMS > 0 {
		fmt.Printf("SLO attainment (TPOT ≤ %v): %.1f%%\n", slo.TokenLatency, 100*f.Attainment(slo))
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid sweep rate %q", part)
		}
		rates = append(rates, v)
	}
	return rates, nil
}
