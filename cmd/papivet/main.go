// Command papivet runs the repo's static-analysis suite (internal/analysis):
// determinism, unitsafety, noalloc and facade — the compile-time form of the
// simulator's bit-identical-determinism, dimensional-correctness and
// zero-alloc-fast-path contracts.
//
//	papivet ./...              # analyze the whole module (exit 2 on findings)
//	papivet -waivers ./...     # audit every //papivet: directive in the repo
//	papivet ./internal/serving # analyze one package
//
// Each finding prints as file:line:col: analyzer: message. Findings are
// waived in source with
//
//	//papivet:allow <analyzer> — justification
//	//papivet:ordered — justification            (map-range findings only)
//
// and a justification is mandatory — papivet reports waivers that lack one.
// See docs/ANALYSIS.md for the analyzer catalogue and waiver etiquette.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/papi-sim/papi/internal/analysis"
)

func main() {
	waivers := flag.Bool("waivers", false, "list every //papivet: waiver and annotation in the analyzed packages, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: papivet [-waivers] [package patterns]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "papivet: %v\n", err)
		os.Exit(1)
	}

	if *waivers {
		listWaivers(pkgs)
		return
	}

	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "papivet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "papivet: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}

// listWaivers prints the audit list: every directive, its kind, and its
// justification, so reviewers can see at a glance what has been waived away.
func listWaivers(pkgs []*analysis.Package) {
	n := 0
	for _, pkg := range pkgs {
		for _, dir := range pkg.Dirs.All() {
			n++
			switch dir.Kind {
			case analysis.KindAllow:
				fmt.Printf("%s:%d: allow %s — %s\n", dir.Pos.Filename, dir.Pos.Line, dir.Analyzer, dir.Justification)
			case analysis.KindOrdered:
				fmt.Printf("%s:%d: ordered — %s\n", dir.Pos.Filename, dir.Pos.Line, dir.Justification)
			case analysis.KindNoAlloc:
				fmt.Printf("%s:%d: noalloc annotation\n", dir.Pos.Filename, dir.Pos.Line)
			}
		}
	}
	fmt.Printf("%d directive(s)\n", n)
}
