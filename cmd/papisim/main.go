// Command papisim runs one end-to-end LLM serving simulation on a chosen
// system design and prints latency, energy and scheduler activity.
//
// Examples:
//
//	papisim -design PAPI -model LLaMA-65B -dataset creative-writing -batch 16 -spec 4
//	papisim -design AttAcc-only -model "GPT-3 175B" -batch 64
//	papisim -design PAPI -continuous -rate 20 -requests 64 -maxbatch 16
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/workload"
)

func main() {
	var (
		design     = flag.String("design", "PAPI", `system design: "PAPI", "A100+AttAcc", "A100+HBM-PIM", "AttAcc-only", "PIM-only PAPI"`)
		modelName  = flag.String("model", "LLaMA-65B", `model: "OPT-30B", "LLaMA-65B", "GPT-3 66B", "GPT-3 175B"`)
		dataset    = flag.String("dataset", "creative-writing", `workload: "creative-writing" or "general-qa"`)
		batch      = flag.Int("batch", 16, "batch size (initial RLP)")
		spec       = flag.Int("spec", 1, "speculation length (TLP); 1 disables speculative decoding")
		seed       = flag.Int64("seed", 42, "workload and acceptance seed")
		alpha      = flag.Float64("alpha", 0, "override PAPI's α threshold (0 = calibrated default)")
		continuous = flag.Bool("continuous", false, "use mixed continuous batching over Poisson arrivals")
		rate       = flag.Float64("rate", 10, "arrival rate (requests/s) for -continuous")
		requests   = flag.Int("requests", 0, "request count for -continuous (default 4×batch)")
		maxBatch   = flag.Int("maxbatch", 0, "admission cap for -continuous (default = batch)")
		trace      = flag.Bool("trace", false, "print the per-iteration scheduling trace")
	)
	flag.Parse()

	if err := run(*design, *modelName, *dataset, *batch, *spec, *seed, *alpha,
		*continuous, *rate, *requests, *maxBatch, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "papisim:", err)
		os.Exit(1)
	}
}

func run(design, modelName, dataset string, batch, spec int, seed int64, alpha float64,
	continuous bool, rate float64, requests, maxBatch int, trace bool) error {
	var sys *core.System
	var err error
	if design == "PAPI" && alpha > 0 {
		sys = core.NewPAPI(alpha)
	} else {
		sys, err = core.ByName(design)
		if err != nil {
			return err
		}
	}
	cfg, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	ds, err := workload.ByName(dataset)
	if err != nil {
		return err
	}

	opt := serving.DefaultOptions(spec)
	opt.Seed = seed
	eng, err := serving.New(sys, cfg, opt)
	if err != nil {
		return err
	}

	var res serving.Result
	if continuous {
		n := requests
		if n <= 0 {
			n = 4 * batch
		}
		mb := maxBatch
		if mb <= 0 {
			mb = batch
		}
		res, err = eng.RunContinuous(ds.Poisson(n, rate, seed), mb)
	} else {
		res, err = eng.RunBatch(ds.Generate(batch, seed))
	}
	if err != nil {
		return err
	}

	fmt.Printf("design        %s\n", res.System)
	fmt.Printf("model         %s\n", res.Model)
	fmt.Printf("workload      %s, batch %d, speculation length %d\n", dataset, batch, spec)
	fmt.Printf("prefill       %v\n", res.PrefillTime)
	fmt.Printf("decode        %v over %d iterations\n", res.DecodeTime, res.Iterations)
	if res.IdleTime > 0 {
		fmt.Printf("idle          %v (waiting for arrivals)\n", res.IdleTime)
	}
	fmt.Printf("total         %v\n", res.TotalTime())
	fmt.Printf("tokens        %d (%v per token)\n", res.Tokens, res.TimePerToken())
	fmt.Printf("breakdown     FC %v | attention %v | communication %v | other %v\n",
		res.Breakdown.FC, res.Breakdown.Attention, res.Breakdown.Communication, res.Breakdown.Other)
	fmt.Printf("reschedules   %d\n", res.Reschedules)
	if res.Throttled {
		fmt.Printf("note          PIM power governor throttled execution to the 116 W budget\n")
	}
	fmt.Printf("energy        %v total\n", res.Energy.Total())
	for _, c := range res.Energy.Components() {
		fmt.Printf("  %-13s %v (%.1f%%)\n", c, res.Energy.Get(c), 100*res.Energy.Share(c))
	}
	if trace {
		fmt.Println("\niteration trace (capped):")
		for _, it := range res.IterStats {
			fmt.Printf("  iter %4d  RLP %3d  TLP %d  AI≈%3d  FC→%-6s  %v\n",
				it.Index, it.RLP, it.TLP, it.RLP*it.TLP, it.Placement, it.Time)
		}
	}
	return nil
}
