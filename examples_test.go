package papi

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// Every examples/* program must build and run to completion: the examples
// are executable documentation of the facade, so a facade change that breaks
// one must fail the suite, not a reader. Each example runs in its own
// subtest with a generous timeout (they all finish in well under a second
// once built).
func TestExamplesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test compiles and runs every example; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		ran++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out:\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("examples/ holds no example programs")
	}
}
